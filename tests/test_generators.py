"""Unit tests for the synthetic graph generators."""

import numpy as np
import pytest

from repro.graph import generators as gen


class TestErdosRenyi:
    def test_deterministic(self):
        assert gen.erdos_renyi(30, 0.2, seed=1) == gen.erdos_renyi(30, 0.2, seed=1)

    def test_different_seeds_differ(self):
        assert gen.erdos_renyi(30, 0.2, seed=1) != gen.erdos_renyi(30, 0.2, seed=2)

    def test_p_zero_empty(self):
        assert gen.erdos_renyi(10, 0.0).num_edges == 0

    def test_p_one_complete(self):
        g = gen.erdos_renyi(8, 1.0)
        assert g.num_edges == 8 * 7 // 2

    def test_invalid_p(self):
        with pytest.raises(ValueError):
            gen.erdos_renyi(10, 1.5)

    def test_edge_count_near_expectation(self):
        g = gen.erdos_renyi(100, 0.1, seed=9)
        expected = 0.1 * 100 * 99 / 2
        assert 0.7 * expected < g.num_edges < 1.3 * expected


class TestBarabasiAlbert:
    def test_vertex_and_min_edge_count(self):
        n, m = 60, 3
        g = gen.barabasi_albert(n, m, seed=0)
        assert g.num_vertices == n
        # initial clique + m edges per arriving vertex (some may collide)
        assert g.num_edges >= (n - m - 1) * m

    def test_power_law_tail(self):
        g = gen.barabasi_albert(400, 2, seed=1)
        # preferential attachment: max degree far above the average
        assert g.max_degree > 4 * g.avg_degree

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            gen.barabasi_albert(3, 3)

    def test_connected(self):
        g = gen.barabasi_albert(50, 2, seed=2)
        # BFS from 0 reaches everything (preferential attachment grows
        # one connected component)
        seen = {0}
        stack = [0]
        while stack:
            for v in g.neighbours(stack.pop()):
                if int(v) not in seen:
                    seen.add(int(v))
                    stack.append(int(v))
        assert len(seen) == g.num_vertices


class TestPowerLawCluster:
    def test_more_triangles_than_ba(self):
        from repro.baselines import count_matches
        from repro.query import get_query

        tri = get_query("triangle")
        plc = gen.power_law_cluster(80, 3, triad_p=0.9, seed=3)
        ba = gen.barabasi_albert(80, 3, seed=3)
        assert count_matches(plc, tri) > count_matches(ba, tri)

    def test_invalid_triad_p(self):
        with pytest.raises(ValueError):
            gen.power_law_cluster(20, 2, triad_p=1.5)

    def test_deterministic(self):
        assert (gen.power_law_cluster(40, 2, seed=7)
                == gen.power_law_cluster(40, 2, seed=7))


class TestHubWeb:
    def test_hub_degree_dominates(self):
        g = gen.hub_web(200, num_hubs=2, hub_degree=80, seed=1)
        assert g.max_degree >= 60

    def test_invalid_hub_count(self):
        with pytest.raises(ValueError):
            gen.hub_web(10, num_hubs=10, hub_degree=3)

    def test_invalid_hub_degree(self):
        with pytest.raises(ValueError):
            gen.hub_web(10, num_hubs=1, hub_degree=10)


class TestRoadGrid:
    def test_low_max_degree(self):
        g = gen.road_grid(15, 15, extra_p=0.0, drop_p=0.0, seed=0)
        assert g.max_degree <= 4

    def test_size(self):
        g = gen.road_grid(10, 12, seed=0)
        assert g.num_vertices == 120

    def test_extra_edges_add_shortcuts(self):
        plain = gen.road_grid(12, 12, extra_p=0.0, drop_p=0.0, seed=1)
        extra = gen.road_grid(12, 12, extra_p=0.2, drop_p=0.0, seed=1)
        assert extra.num_edges > plain.num_edges


class TestDeterministicShapes:
    def test_complete(self):
        g = gen.complete_graph(5)
        assert g.num_edges == 10
        assert all(g.degree(v) == 4 for v in g.vertices())

    def test_star(self):
        g = gen.star_graph(4)
        assert g.num_edges == 4
        assert g.degree(0) == 4

    def test_cycle(self):
        g = gen.cycle_graph(6)
        assert g.num_edges == 6
        assert all(g.degree(v) == 2 for v in g.vertices())

    def test_cycle_too_small(self):
        with pytest.raises(ValueError):
            gen.cycle_graph(2)

    def test_path(self):
        g = gen.path_graph(5)
        assert g.num_edges == 4
        assert g.degree(0) == 1 and g.degree(2) == 2
