"""Tests for automorphisms and symmetry breaking.

The key invariant (paper §2, [28]): with the computed partial order,
exactly one ordered embedding per subgraph instance survives, i.e.
``#matches × |Aut(q)| = #ordered embeddings``.
"""

import pytest

from repro.baselines import (count_matches, count_ordered_embeddings,
                             enumerate_ordered_embeddings)
from repro.graph import generators as gen
from repro.query import (QueryGraph, automorphism_count, automorphisms,
                         get_query, orbits, satisfies_order, symmetry_break)


class TestAutomorphisms:
    @pytest.mark.parametrize("name,count", [
        ("triangle", 6),   # S3
        ("q1", 8),         # dihedral D4
        ("q2", 4),
        ("q3", 24),        # S4
        ("q6", 2),         # path reversal
        ("q7", 10),        # dihedral D5
        ("q8", 12),        # dihedral D6
    ])
    def test_known_group_orders(self, name, count):
        assert automorphism_count(get_query(name)) == count

    def test_identity_always_present(self):
        for name in ("q1", "q4", "q6"):
            q = get_query(name)
            assert tuple(range(q.num_vertices)) in automorphisms(q)

    def test_all_are_permutations(self):
        q = get_query("q2")
        for perm in automorphisms(q):
            assert sorted(perm) == list(range(q.num_vertices))

    def test_all_preserve_edges(self):
        q = get_query("q4")
        for perm in automorphisms(q):
            for (u, v) in q.edges:
                assert q.has_edge(perm[u], perm[v])

    def test_asymmetric_pattern(self):
        # a triangle with tails of different lengths has no symmetry
        q = QueryGraph(6, [(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (1, 5)])
        assert automorphism_count(q) == 1

    def test_orbits_of_clique(self):
        q = get_query("q3")
        assert orbits(q) == [frozenset({0, 1, 2, 3})]

    def test_orbits_of_path(self):
        q = get_query("q6")  # 0-1-2-3-4
        orbs = orbits(q)
        assert frozenset({0, 4}) in orbs
        assert frozenset({2}) in orbs


class TestSymmetryBreak:
    @pytest.mark.parametrize("name", ["triangle", "q1", "q2", "q3", "q4",
                                      "q5", "q6", "q7", "q8"])
    def test_counting_invariant(self, name):
        """matches × |Aut| == ordered embeddings, on a random graph."""
        q = get_query(name)
        g = gen.erdos_renyi(18, 0.45, seed=11)
        ordered = count_ordered_embeddings(g, q)
        matched = count_matches(g, q)
        assert matched * automorphism_count(q) == ordered

    def test_exactly_one_representative(self):
        """each instance (as a vertex set + edge check) appears once"""
        q = get_query("q1")
        g = gen.erdos_renyi(14, 0.5, seed=2)
        conditions = symmetry_break(q)
        seen = set()
        for emb in enumerate_ordered_embeddings(g, q):
            if satisfies_order(emb, conditions):
                key = frozenset(emb)
                # a vertex set can host several distinct squares (different
                # cyclic orders), so key on the mapped edge set instead
                key = frozenset(frozenset((emb[u], emb[v]))
                                for u, v in q.edges)
                assert key not in seen
                seen.add(key)

    def test_asymmetric_needs_no_conditions(self):
        q = QueryGraph(6, [(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (1, 5)])
        assert symmetry_break(q) == frozenset()

    def test_clique_total_order(self):
        q = get_query("q3")
        conds = symmetry_break(q)
        # a clique's order must totally order all 4 vertices: C(4,2) pairs
        # reachable by transitivity; the generator set covers all of them
        assert len(conds) == 6

    def test_satisfies_order(self):
        conds = frozenset({(0, 1)})
        assert satisfies_order((2, 5), conds)
        assert not satisfies_order((5, 2), conds)

    def test_conditions_are_acyclic(self):
        for name in ("q1", "q4", "q7", "q8"):
            conds = symmetry_break(get_query(name))
            # topological order must exist
            import graphlib

            ts = graphlib.TopologicalSorter()
            for (u, v) in conds:
                ts.add(v, u)
            ts.prepare()  # raises CycleError if cyclic
