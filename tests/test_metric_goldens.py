"""Bit-identity guard: simulated metrics match the frozen goldens.

The golden file pins the full accounting (ops-derived times, bytes,
messages, peak memory, worker-load statistics, match counts) of every
HUGE configuration on fixed workloads.  Exact float equality is the
point: the batch-representation refactor must not change a single
charge.  Regenerate deliberately with::

    PYTHONPATH=src python -m repro.testing.goldens --write tests/golden/metrics.json
"""

import json
import os

import pytest

from repro.testing.goldens import (capture_goldens, golden_budget_cases,
                                   golden_specs, golden_workloads)

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "golden",
                           "metrics.json")


@pytest.fixture(scope="module")
def goldens():
    with open(GOLDEN_PATH, encoding="utf-8") as f:
        return json.load(f)


@pytest.fixture(scope="module")
def current():
    return capture_goldens()


def test_golden_file_covers_matrix(goldens):
    spec_names = {s.name for s in golden_specs()}
    case_names = {name for name, _ in golden_workloads()}
    assert set(goldens["cases"]) == case_names
    for case in goldens["cases"].values():
        assert set(case["specs"]) == spec_names
    budget_names = {name for name, _, _, _ in golden_budget_cases()}
    assert set(goldens["budget_cases"]) == budget_names


def test_golden_file_covers_baselines(goldens):
    # every baseline engine is golden-pinned on the unlabelled workloads
    # (labelled ones are recorded as explicitly unsupported)
    for case in goldens["cases"].values():
        for engine in ("seed", "bigjoin", "benu", "rads"):
            assert engine in case["specs"]


def test_budget_trip_points_bit_identical(goldens, current):
    # OOM/overtime aborts must trip at the same charge: both the error
    # string (which embeds the tripping machine/amount) and the full
    # abort-time metrics snapshot are compared exactly
    assert current["budget_cases"] == goldens["budget_cases"]


@pytest.mark.parametrize("case_name",
                         [name for name, _ in golden_workloads()])
def test_metrics_bit_identical(goldens, current, case_name):
    expected = goldens["cases"][case_name]["specs"]
    actual = current["cases"][case_name]["specs"]
    for spec_name, record in expected.items():
        got = actual[spec_name]
        assert got == record, (
            f"{case_name}/{spec_name}: simulated metrics drifted from "
            f"the golden record.\n  golden: {record}\n  got:    {got}")


@pytest.mark.parametrize("case_name",
                         [name for name, _ in golden_workloads()])
def test_goldens_unchanged_with_metrics_enabled(goldens, case_name):
    """Attaching the metrics registry (PR 7) must not move a single
    golden number: re-run every HUGE spec under a MetricsTracer and
    compare against the same frozen records."""
    from repro.obs import MetricsRegistry, MetricsTracer
    from repro.testing.harness import execute

    workload = dict(golden_workloads())[case_name]
    for spec in golden_specs():
        if not getattr(spec, "is_huge", False) or not spec.supports(workload):
            continue
        record = goldens["cases"][case_name]["specs"][spec.name]
        outcome = execute(workload, spec,
                          tracer=MetricsTracer(MetricsRegistry()))
        assert outcome.error is None, outcome.error
        got = {"count": outcome.count,
               "report": outcome.report.as_dict(),
               "cache_overflow_ids": outcome.cache_overflow_ids}
        assert got == record, (
            f"{case_name}/{spec.name}: metrics-enabled run drifted from "
            f"the golden record")
