"""Budget enforcement: the paper's 00M and 0T outcomes."""

import pytest

from repro.baselines import (BenuEngine, BigJoinEngine, RadsEngine,
                             SeedEngine)
from repro.cluster import (Cluster, CostModel, OutOfMemoryError,
                           OvertimeError)
from repro.core import EngineConfig, HugeEngine
from repro.graph import generators as gen
from repro.query import get_query


@pytest.fixture(scope="module")
def hub_graph():
    """A graph with strong hubs — the star-explosion trigger."""
    return gen.hub_web(400, num_hubs=3, hub_degree=150, seed=3)


def tight_cluster(graph, memory_mb=None, time_s=None, k=4):
    cost = CostModel(
        memory_budget_bytes=(memory_mb * 1e6 if memory_mb else float("inf")),
        time_budget_s=(time_s if time_s is not None else float("inf")))
    return Cluster(graph, num_machines=k, workers_per_machine=4, cost=cost,
                   seed=1)


class TestOOM:
    def test_seed_ooms_on_star_explosion(self, hub_graph):
        """SEED materialises 3-stars of the diamond's plan → 00M under a
        tight budget (the paper's Exp-2 SEED failures)"""
        cl = tight_cluster(hub_graph, memory_mb=0.5)
        with pytest.raises(OutOfMemoryError):
            SeedEngine(cl).run(get_query("q2"))

    def test_rads_ooms_on_star_explosion(self, hub_graph):
        cl = tight_cluster(hub_graph, memory_mb=0.5)
        with pytest.raises(OutOfMemoryError):
            RadsEngine(cl).run(get_query("q2"))

    def test_bigjoin_ooms_despite_batching(self, hub_graph):
        """§5.1: static batching lacks a tight bound — a single batch can
        explode on hub vertices"""
        cl = tight_cluster(hub_graph, memory_mb=0.2)
        with pytest.raises(OutOfMemoryError):
            BigJoinEngine(cl, edge_batch=1 << 20).run(get_query("q6"))

    def test_huge_completes_under_same_budget(self, hub_graph):
        """the adaptive scheduler keeps HUGE inside the budget that kills
        SEED/RADS (Table 1 / Exp-2's completion-rate story)"""
        cl = tight_cluster(hub_graph, memory_mb=0.5)
        cfg = EngineConfig(output_queue_capacity=512,
                           cache_capacity_ids=2000)
        result = HugeEngine(cl, cfg).run(get_query("q2"))
        assert result.count > 0

    def test_benu_completes_under_tiny_budget(self, hub_graph):
        """DFS needs almost no memory"""
        cl = tight_cluster(hub_graph, memory_mb=0.5)
        result = BenuEngine(cl, cache_capacity_fraction=0.05).run(
            get_query("q2"))
        assert result.count > 0

    def test_oom_error_carries_context(self, hub_graph):
        cl = tight_cluster(hub_graph, memory_mb=0.5)
        try:
            SeedEngine(cl).run(get_query("q2"))
            pytest.fail("expected OutOfMemoryError")
        except OutOfMemoryError as e:
            assert e.used > e.budget
            assert 0 <= e.machine < 4


class TestOvertime:
    def test_benu_overtime(self, hub_graph):
        """the KV-store stalls blow a small time budget"""
        cl = tight_cluster(hub_graph, time_s=0.05)
        with pytest.raises(OvertimeError):
            BenuEngine(cl).run(get_query("q2"))

    def test_huge_within_same_time_budget(self, hub_graph):
        cl = tight_cluster(hub_graph, time_s=2.0)
        result = HugeEngine(cl).run(get_query("q2"))
        assert result.report.total_time_s <= 2.0

    def test_overtime_error_fields(self, hub_graph):
        cl = tight_cluster(hub_graph, time_s=0.01)
        try:
            BenuEngine(cl).run(get_query("q1"))
            pytest.fail("expected OvertimeError")
        except OvertimeError as e:
            assert e.elapsed > e.budget

    def test_huge_overtime_detected(self, hub_graph):
        cl = tight_cluster(hub_graph, time_s=1e-6)
        with pytest.raises(OvertimeError):
            HugeEngine(cl).run(get_query("q1"))
