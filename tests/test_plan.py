"""Tests for logical plans, Equation 3 configuration, and the optimiser."""

import pytest

from repro.cluster import PlanError
from repro.core.plan import (CommMode, JoinAlgorithm, LogicalPlan, Optimiser,
                             PlanNode, benu_plan, configure_join,
                             configure_plan, dfs_order, emptyheaded_plan,
                             graphflow_plan, greedy_order, optimal_plan,
                             rads_plan, seed_plan, starjoin_plan,
                             vertex_order_plan, wco_plan)
from repro.query import (ExactEstimator, SubQuery, full_subquery, get_query)


def sq(*edges):
    return SubQuery(frozenset(tuple(sorted(e)) for e in edges))


class TestPlanNode:
    def test_leaf(self):
        node = PlanNode(sq((0, 1)))
        assert node.is_leaf
        assert node.depth() == 1

    def test_join_validation_edge_overlap(self):
        with pytest.raises(PlanError):
            PlanNode(sq((0, 1), (1, 2)),
                     PlanNode(sq((0, 1))), PlanNode(sq((0, 1), (1, 2))))

    def test_join_validation_coverage(self):
        with pytest.raises(PlanError):
            PlanNode(sq((0, 1), (1, 2), (2, 3)),
                     PlanNode(sq((0, 1))), PlanNode(sq((1, 2))))

    def test_join_validation_disconnected(self):
        with pytest.raises(PlanError):
            PlanNode(sq((0, 1), (2, 3)),
                     PlanNode(sq((0, 1))), PlanNode(sq((2, 3))))

    def test_one_child_rejected(self):
        with pytest.raises(PlanError):
            PlanNode(sq((0, 1), (1, 2)), PlanNode(sq((0, 1))), None)

    def test_traversal_order(self):
        left = PlanNode(sq((0, 1)))
        right = PlanNode(sq((1, 2)))
        root = PlanNode(sq((0, 1), (1, 2)), left, right)
        assert [n.is_leaf for n in root.nodes()] == [True, True, False]
        assert list(root.joins()) == [root]
        assert root.is_left_deep()


class TestLogicalPlan:
    def test_validates_root_coverage(self):
        q = get_query("triangle")
        with pytest.raises(PlanError):
            LogicalPlan(q, PlanNode(sq((0, 1))))

    def test_validates_star_units(self):
        q = get_query("triangle")
        # triangle "unit" is not a star
        with pytest.raises(PlanError):
            LogicalPlan(q, PlanNode(full_subquery(q)))

    def test_describe_mentions_joins(self):
        plan = wco_plan(get_query("q1"))
        text = plan.describe()
        assert "J1" in text and "J2" in text


class TestEquationThree:
    def test_complete_star_join_is_wco_pulling(self):
        left = sq((0, 1), (1, 2))
        right = sq((0, 3), (2, 3))
        setting, swapped = configure_join(left, right)
        assert setting.algorithm is JoinAlgorithm.WCO
        assert setting.comm is CommMode.PULLING
        assert setting.star_root == 3
        assert not swapped

    def test_star_with_matched_root_is_hash_pulling(self):
        left = sq((0, 1), (1, 2))
        right = sq((0, 3), (0, 4))  # root 0 matched, leaves new
        setting, _ = configure_join(left, right)
        assert setting.algorithm is JoinAlgorithm.HASH
        assert setting.comm is CommMode.PULLING
        assert setting.star_root == 0

    def test_otherwise_hash_pushing(self):
        left = sq((0, 1), (1, 2))        # path
        right = sq((2, 3), (3, 4))       # path sharing vertex 2
        setting, _ = configure_join(left, right)
        assert setting.algorithm is JoinAlgorithm.HASH
        assert setting.comm is CommMode.PUSHING
        assert setting.star_root is None

    def test_wedge_right_is_also_a_star(self):
        # a wedge is a 2-star, so either orientation qualifies; the
        # un-swapped one is preferred
        left = sq((0, 3), (2, 3))
        right = sq((0, 1), (1, 2))
        setting, swapped = configure_join(left, right)
        assert not swapped
        assert setting.comm is CommMode.PULLING
        assert setting.star_root == 1

    def test_swapped_when_star_on_left(self):
        # right is a 3-path (not a star); left is the star → swap
        left = sq((0, 3), (2, 3))
        right = sq((0, 1), (1, 2), (2, 4))
        setting, swapped = configure_join(left, right)
        assert swapped
        assert setting.comm is CommMode.PULLING
        assert setting.star_root == 3

    def test_configure_plan_swaps_children(self):
        from repro.query import QueryGraph

        q = QueryGraph(5, [(0, 1), (1, 2), (2, 4), (0, 3), (2, 3)])
        star = sq((0, 3), (2, 3))
        path = sq((0, 1), (1, 2), (2, 4))  # not a star
        path_node = PlanNode(path, PlanNode(sq((0, 1), (1, 2))),
                             PlanNode(sq((2, 4))))
        logical = LogicalPlan(q, PlanNode(
            full_subquery(q), PlanNode(star), path_node))
        plan = configure_plan(logical)
        join = list(plan.joins())[-1]  # post-order: root join is last
        assert join.right.sub == star  # star moved to the right


class TestOptimiser:
    @pytest.fixture()
    def estimator(self, er_graph):
        return ExactEstimator(er_graph)

    @pytest.mark.parametrize("name", ["triangle", "q1", "q2", "q3", "q4",
                                      "q6", "q7", "q8"])
    def test_produces_valid_plan(self, name, estimator, er_graph):
        plan = optimal_plan(get_query(name), estimator, 4,
                            er_graph.num_edges)
        assert plan.root.sub == full_subquery(get_query(name))
        assert plan.estimated_cost > 0

    def test_star_query_is_single_unit(self, estimator, er_graph):
        from repro.query import QueryGraph

        star = QueryGraph(4, [(0, 1), (0, 2), (0, 3)])
        plan = optimal_plan(star, estimator, 4, er_graph.num_edges)
        assert plan.root.is_leaf

    def test_disconnected_query_rejected(self, estimator, er_graph):
        from repro.query import QueryGraph

        with pytest.raises(PlanError):
            optimal_plan(QueryGraph(4, [(0, 1), (2, 3)]), estimator, 4,
                         er_graph.num_edges)

    def test_unknown_strategy_rejected(self, estimator):
        with pytest.raises(ValueError):
            Optimiser(estimator, 4, 100, cost_strategy="bogus")

    def test_pull_cost_scales_with_machines(self, estimator, er_graph):
        # more machines make pulling k·|E| more expensive; cost must not
        # decrease with k for the same query
        q = get_query("q1")
        cost_small = Optimiser(estimator, 2, er_graph.num_edges).run(q)
        cost_large = Optimiser(estimator, 64, er_graph.num_edges).run(q)
        assert cost_large.estimated_cost >= cost_small.estimated_cost

    def test_compute_strategies_ignore_communication(self, estimator,
                                                     er_graph):
        q = get_query("q7")
        mat = Optimiser(estimator, 10, er_graph.num_edges,
                        cost_strategy="compute-mat")
        plan, cost = mat.run_logical(q)
        # same DP with a huge cluster must give the identical cost since
        # communication is ignored
        mat2 = Optimiser(estimator, 10_000, er_graph.num_edges,
                         cost_strategy="compute-mat")
        _, cost2 = mat2.run_logical(q)
        assert cost == cost2


class TestPluginPlans:
    @pytest.mark.parametrize("name", ["q1", "q2", "q3", "q4", "q6", "q7"])
    def test_wco_plan_is_left_deep_extensions(self, name):
        q = get_query(name)
        plan = wco_plan(q)
        assert plan.root.is_left_deep()
        # every join is a complete star join (vertex extension)
        from repro.query import is_complete_star_join

        for node in plan.joins():
            assert is_complete_star_join(node.left.sub, node.right.sub)

    def test_wco_order_is_connected(self):
        q = get_query("q5")
        order = greedy_order(q)
        seen = {order[0]}
        for v in order[1:]:
            assert q.neighbours(v) & seen
            seen.add(v)

    def test_dfs_order_starts_at_zero(self):
        assert dfs_order(get_query("q4"))[0] == 0

    def test_benu_plan_valid(self):
        plan = benu_plan(get_query("q2"))
        assert plan.root.is_left_deep()

    def test_vertex_order_plan_rejects_bad_order(self):
        q = get_query("q1")
        with pytest.raises(PlanError):
            vertex_order_plan(q, [0, 2, 1, 3])  # 0-2 not an edge

    def test_vertex_order_plan_rejects_non_permutation(self):
        with pytest.raises(PlanError):
            vertex_order_plan(get_query("q1"), [0, 1, 2])

    def test_rads_plan_roots_matched(self):
        q = get_query("q1")
        plan = rads_plan(q)
        matched: set[int] = set()
        for leaf in plan.root.leaves():
            star = leaf.sub
            if matched:
                assert star.star_root() in matched or (
                    star.num_vertices == 2
                    and star.vertices & matched)
            matched |= star.vertices

    def test_starjoin_plan_covers_query(self):
        q = get_query("q4")
        plan = starjoin_plan(q)
        assert plan.root.sub == full_subquery(q)

    def test_seed_plan_valid(self, er_graph):
        plan = seed_plan(get_query("q1"), ExactEstimator(er_graph))
        assert plan.root.sub == full_subquery(get_query("q1"))

    def test_sequential_hybrid_plans(self, er_graph):
        est = ExactEstimator(er_graph)
        q = get_query("q7")
        eh = emptyheaded_plan(q, est)
        gf = graphflow_plan(q, est, er_graph.avg_degree)
        assert eh.root.sub == full_subquery(q)
        assert gf.root.sub == full_subquery(q)

    def test_q7_best_plan_joins_paths(self, er_graph):
        """Exp-9: the 5-cycle's plan should join a 3-path with a 2-path
        (in the compute-only/sequential setting) rather than extend a
        4-path one vertex at a time."""
        est = ExactEstimator(er_graph)
        plan = emptyheaded_plan(get_query("q7"), est)
        root_join = list(plan.joins())[-1]
        sizes = sorted([root_join.left.sub.num_edges,
                        root_join.right.sub.num_edges])
        assert sizes == [2, 3]
