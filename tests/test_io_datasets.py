"""Unit tests for edge-list I/O and the named datasets."""

import pytest

from repro.graph import (DATASETS, dataset_table, load_dataset,
                         load_edge_list, save_edge_list)
from repro.graph import generators as gen


class TestIO:
    def test_roundtrip(self, tmp_path, er_graph):
        path = tmp_path / "g.txt"
        save_edge_list(er_graph, path)
        loaded = load_edge_list(path, relabel=False)
        assert loaded == er_graph

    def test_comments_and_blank_lines(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("# comment\n\n% another\n0 1\n1 2\n")
        g = load_edge_list(path, relabel=False)
        assert g.num_edges == 2

    def test_commas_accepted(self, tmp_path):
        path = tmp_path / "g.csv"
        path.write_text("0,1\n1,2\n")
        assert load_edge_list(path, relabel=False).num_edges == 2

    def test_string_vertices_relabel(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("alice bob\nbob carol\n")
        g = load_edge_list(path)
        assert g.num_vertices == 3

    def test_malformed_line_raises(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("0\n")
        with pytest.raises(ValueError):
            load_edge_list(path)


class TestDatasets:
    def test_all_names_load(self):
        for name in DATASETS:
            g = load_dataset(name, scale=0.3)
            assert g.num_vertices > 0
            assert g.num_edges > 0

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            load_dataset("nope")

    def test_case_insensitive(self):
        assert load_dataset("lj") == load_dataset("LJ")

    def test_deterministic(self):
        assert load_dataset("GO") == load_dataset("GO")

    def test_scale_grows(self):
        small = load_dataset("LJ", scale=0.5)
        big = load_dataset("LJ", scale=1.0)
        assert big.num_vertices > small.num_vertices

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            load_dataset("LJ", scale=0)

    def test_road_graph_low_degree(self):
        assert load_dataset("EU").max_degree <= 8

    def test_web_graphs_have_hubs(self):
        for name in ("UK", "CW"):
            g = load_dataset(name)
            assert g.max_degree > 20 * g.avg_degree

    def test_size_ordering_preserved(self):
        # relative ordering of the original datasets is preserved
        sizes = {n: load_dataset(n).num_edges for n in ("GO", "LJ", "FS", "CW")}
        assert sizes["GO"] < sizes["LJ"] <= sizes["FS"] <= sizes["CW"]

    def test_dataset_table_rows(self):
        rows = dataset_table(scale=0.5)
        assert len(rows) == len(DATASETS)
        for row in rows:
            assert row["paper_E"] > row["standin_E"]
            assert set(row) >= {"dataset", "family", "paper_dmax",
                                "standin_dmax"}
