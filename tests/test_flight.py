"""Tests for the per-query flight recorder (repro.obs.flight): bounded
rings, phase breakdowns, the slow-query log (including an end-to-end
deadline-missed request through the service), dump-on-crash, and the
JSONL export format."""

from __future__ import annotations

import json

import pytest

from repro.obs import FlightRecorder
from repro.serve import (FaultInjector, QueryRequest, QueryService,
                         QueryStatus)


class FakeClock:
    """A hand-cranked wall clock so phase durations are exact."""

    def __init__(self) -> None:
        self.t = 100.0

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


@pytest.fixture()
def clock():
    return FakeClock()


def fly(rec: FlightRecorder, clock: FakeClock, seq: int,
        phases: list[tuple[str, float]], status: str = "completed",
        deadline_s: float | None = None) -> None:
    """Record one flight: each (kind, dwell) pair spends ``dwell`` seconds
    in that phase before the next event."""
    rec.begin(seq, f"q#{seq}", deadline_s=deadline_s)
    for kind, dwell in phases:
        clock.advance(dwell)
        rec.event(seq, kind)
    clock.advance(0.0)
    rec.finish(seq, status)


class TestFlightLifecycle:
    def test_phase_breakdown_attributes_gaps(self, clock):
        rec = FlightRecorder(clock=clock)
        rec.begin(1, "q1", tenant="t", deadline_s=10.0)
        clock.advance(0.5)           # time spent "admitted" (queueing)
        rec.event(1, "dispatched")
        clock.advance(2.0)           # time spent dispatched (executing)
        rec.event(1, "executed", count=42)
        clock.advance(0.25)
        rec.finish(1, "completed")
        flight = rec.get(1)
        assert flight.status == "completed"
        phases = flight.phase_seconds()
        assert phases["admitted"] == pytest.approx(0.5)
        assert phases["dispatched"] == pytest.approx(2.0)
        assert phases["executed"] == pytest.approx(0.25)
        assert flight.total_s == pytest.approx(2.75)
        assert flight.as_dict()["phases"] == phases

    def test_event_on_unknown_seq_is_noop(self, clock):
        rec = FlightRecorder(clock=clock)
        rec.event(999, "dispatched")     # must not raise
        rec.finish(999, "completed")
        assert rec.stats()["retained"] == 0

    def test_ring_bound_drops_oldest_first(self, clock):
        rec = FlightRecorder(capacity=3, clock=clock)
        for seq in range(6):
            fly(rec, clock, seq, [("dispatched", 0.1)])
        flights = rec.flights()
        assert [f.seq for f in flights] == [3, 4, 5]
        assert rec.dropped == 3
        assert rec.stats()["dropped"] == 3
        assert rec.get(0) is None
        assert rec.get(5) is not None


class TestSlowQueryLog:
    def test_absolute_threshold(self, clock):
        rec = FlightRecorder(slow_threshold_s=1.0, clock=clock)
        fly(rec, clock, 1, [("executed", 0.2)])       # fast: not logged
        fly(rec, clock, 2, [("executed", 3.0)])       # slow: logged
        assert len(rec.slow_queries) == 1
        record = rec.slow_queries[0]
        assert record["seq"] == 2
        assert record["slow_threshold_s"] == 1.0
        assert record["phases"]["admitted"] == pytest.approx(3.0)

    def test_deadline_fraction_threshold(self, clock):
        # no absolute threshold: a query with a 1s deadline goes slow at
        # 0.8s even though others never do
        rec = FlightRecorder(deadline_fraction=0.8, clock=clock)
        fly(rec, clock, 1, [("executed", 0.9)])                  # no deadline
        fly(rec, clock, 2, [("executed", 0.9)], deadline_s=1.0)  # 0.9 >= 0.8
        fly(rec, clock, 3, [("executed", 0.5)], deadline_s=1.0)  # under
        assert [r["seq"] for r in rec.slow_queries] == [2]

    def test_slow_log_bounded(self, clock):
        rec = FlightRecorder(slow_log_capacity=2, slow_threshold_s=0.0,
                             clock=clock)
        for seq in range(5):
            fly(rec, clock, seq, [("executed", 0.1)])
        assert len(rec.slow_queries) == 2
        assert rec.slow_dropped == 3
        assert [r["seq"] for r in rec.slow_queries] == [3, 4]


class TestCrashDumps:
    def test_crash_snapshots_immediately(self, clock):
        """The dump survives even if the ring later wraps the flight out."""
        rec = FlightRecorder(capacity=1, clock=clock)
        rec.begin(1, "victim")
        clock.advance(0.5)
        rec.crash(1, worker=3, attempt=1)
        dump = rec.crash_dumps[0]
        assert dump["seq"] == 1
        assert dump["events"][-1]["kind"] == "crash"
        assert dump["events"][-1]["worker"] == 3
        # retry completes, then other flights wrap the ring
        clock.advance(0.5)
        rec.finish(1, "completed")
        for seq in (2, 3):
            fly(rec, clock, seq, [("executed", 0.1)])
        assert rec.get(1) is None          # wrapped out of the ring
        assert rec.crash_dumps[0]["seq"] == 1   # dump survived
        # the dump is a snapshot: it has no terminal event
        assert all(e["kind"] != "completed"
                   for e in rec.crash_dumps[0]["events"])

    def test_crash_dump_bounded(self, clock):
        rec = FlightRecorder(crash_dump_capacity=2, clock=clock)
        for seq in range(4):
            rec.begin(seq, f"q#{seq}")
            rec.crash(seq, worker=0)
            rec.finish(seq, "completed")
        assert len(rec.crash_dumps) == 2
        assert rec.crash_dropped == 2


class TestJsonl:
    def test_dump_format(self, clock, tmp_path):
        rec = FlightRecorder(clock=clock)
        fly(rec, clock, 1, [("dispatched", 0.1), ("executed", 0.2)])
        path = tmp_path / "flights.jsonl"
        n = rec.dump(str(path))
        lines = path.read_text().splitlines()
        assert len(lines) == n == 4  # admitted, dispatched, executed, terminal
        for line in lines:
            ev = json.loads(line)
            assert {"seq", "label", "tenant", "ts", "kind"} <= ev.keys()
            assert ev["seq"] == 1
        kinds = [json.loads(ln)["kind"] for ln in lines]
        assert kinds == ["admitted", "dispatched", "executed", "completed"]


class TestServiceIntegration:
    def test_deadline_missed_request_reproduced_in_slow_log(self, er_graph):
        """The ISSUE's acceptance test: a request that misses its deadline
        shows up in the slow-query log with its span breakdown."""
        flight = FlightRecorder(deadline_fraction=0.5)
        svc = QueryService(datasets={"er": er_graph}, num_workers=1,
                           flight=flight).start()
        try:
            # saturate the single worker so the doomed request waits out
            # its deadline in the queue
            blockers = [svc.submit(QueryRequest(
                pattern="q3", dataset="er", num_machines=2,
                workers_per_machine=2)) for _ in range(3)]
            doomed = svc.submit(QueryRequest(
                pattern="q3", dataset="er", num_machines=2,
                workers_per_machine=2, deadline_s=0.001))
            outcome = doomed.result(timeout=60)
            assert outcome.status is QueryStatus.CANCELLED
            for h in blockers:
                assert h.result(timeout=60).status is QueryStatus.COMPLETED
        finally:
            svc.stop()
        slow = [r for r in flight.slow_queries
                if r["seq"] == doomed.request.seq]
        assert len(slow) == 1
        record = slow[0]
        assert record["status"] == "cancelled"
        assert record["deadline_s"] == 0.001
        assert record["slow_threshold_s"] == pytest.approx(0.0005)
        # span breakdown: all its life was spent waiting in the queue
        assert record["total_s"] >= sum(record["phases"].values()) - 1e-9
        kinds = [e["kind"] for e in record["events"]]
        assert kinds[0] == "admitted"
        assert "queued" in kinds
        assert kinds[-1] == "cancelled"
        # it never produced a result: no executed/streamed events
        assert "executed" not in kinds and "streamed" not in kinds

    def test_crashed_query_flight_dumped(self, er_graph):
        injector = FaultInjector()
        flight = FlightRecorder()
        svc = QueryService(datasets={"er": er_graph}, num_workers=2,
                           injector=injector, backoff_base_s=0.01,
                           flight=flight).start()
        try:
            victim = QueryRequest(pattern="q2", dataset="er",
                                  num_machines=2, workers_per_machine=2)
            injector.crash(victim.seq, attempt=1, after_polls=2)
            outcome = svc.submit(victim).result(timeout=60)
            assert outcome.status is QueryStatus.COMPLETED
            assert outcome.attempts == 2
        finally:
            svc.stop()
        assert len(flight.crash_dumps) == 1
        dump = flight.crash_dumps[0]
        assert dump["seq"] == victim.seq
        assert any(e["kind"] == "crash" for e in dump["events"])
        # the completed retry is also fully recorded in the ring
        done = flight.get(victim.seq)
        assert done.status == "completed"
        kinds = [e.kind for e in done.events]
        assert "crash" in kinds and "retry_scheduled" in kinds
        assert kinds.count("executing") == 2  # both attempts

    def test_all_completed_flights_recorded(self, er_graph):
        flight = FlightRecorder()
        svc = QueryService(datasets={"er": er_graph}, num_workers=2,
                           flight=flight).start()
        try:
            handles = [svc.submit(QueryRequest(
                pattern="triangle", dataset="er", num_machines=2,
                workers_per_machine=2)) for _ in range(4)]
            for h in handles:
                assert h.result(timeout=60).status is QueryStatus.COMPLETED
        finally:
            svc.stop()
        stats = flight.stats()
        assert stats["retained"] == 4
        assert stats["active"] == 0
        for f in flight.flights():
            kinds = [e.kind for e in f.events]
            assert kinds[0] == "admitted"
            for expected in ("queued", "dispatched", "executing", "planned",
                             "executed"):
                assert expected in kinds, (expected, kinds)
            assert kinds[-1] == "completed"
