"""Tests for cardinality estimation (repro.query.estimate)."""

import pytest

from repro.graph import generators as gen
from repro.query import (ExactEstimator, RandomGraphEstimator,
                         SamplingEstimator, get_query, star_count)


class TestStarCount:
    def test_single_leaf_counts_directed_edges(self, er_graph):
        assert star_count(er_graph, 1) == 2 * er_graph.num_edges

    def test_two_leaves_counts_wedges(self):
        g = gen.star_graph(5)  # centre degree 5
        assert star_count(g, 2) == 10  # C(5,2)

    def test_complete_graph(self):
        g = gen.complete_graph(5)  # all degrees 4
        assert star_count(g, 3) == 5 * 4  # 5 · C(4,3)

    def test_invalid_leaves(self, er_graph):
        with pytest.raises(ValueError):
            star_count(er_graph, 0)


class TestExactEstimator:
    def test_matches_reference(self, er_graph):
        from repro.baselines import count_matches

        est = ExactEstimator(er_graph)
        for name in ("triangle", "q1"):
            q = get_query(name)
            assert est.estimate(q) == count_matches(er_graph, q)

    def test_star_shortcut_exact(self, er_graph):
        est = ExactEstimator(er_graph)
        from repro.query import QueryGraph

        wedge = QueryGraph(3, [(0, 1), (0, 2)])
        assert est.estimate(wedge) == pytest.approx(
            star_count(er_graph, 2))

    def test_caching(self, er_graph):
        est = ExactEstimator(er_graph)
        q = get_query("triangle")
        assert est.estimate(q) == est.estimate(q)


class TestSamplingEstimator:
    @pytest.mark.parametrize("name", ["triangle", "q1", "q2"])
    def test_within_factor_of_exact(self, name, er_graph):
        q = get_query(name)
        exact = ExactEstimator(er_graph).estimate(q)
        est = SamplingEstimator(er_graph, trials=3000, seed=7).estimate(q)
        assert exact / 2 <= est <= exact * 2

    def test_deterministic_given_seed(self, er_graph):
        q = get_query("q1")
        a = SamplingEstimator(er_graph, trials=100, seed=5).estimate(q)
        b = SamplingEstimator(er_graph, trials=100, seed=5).estimate(q)
        assert a == b

    def test_invalid_trials(self, er_graph):
        with pytest.raises(ValueError):
            SamplingEstimator(er_graph, trials=0)

    def test_empty_graph(self):
        from repro.graph import Graph

        est = SamplingEstimator(Graph.empty(0))
        assert est.estimate(get_query("triangle")) >= 0

    def test_floor_at_one(self):
        # estimates are floored at 1 so optimiser costs never hit zero
        g = gen.path_graph(4)  # no triangles
        est = SamplingEstimator(g, trials=50, seed=1)
        assert est.estimate(get_query("triangle")) >= 1.0


class TestRandomGraphEstimator:
    def test_order_of_magnitude_on_er(self):
        # the ER formula is asymptotically right on an actual ER graph
        g = gen.erdos_renyi(60, 0.25, seed=9)
        q = get_query("triangle")
        exact = ExactEstimator(g).estimate(q)
        est = RandomGraphEstimator(g).estimate(q)
        assert exact / 4 <= est <= exact * 4

    def test_tiny_graph(self):
        g = gen.path_graph(2)
        est = RandomGraphEstimator(g)
        assert est.estimate(get_query("triangle")) >= 0

    def test_ranking_consistency(self, er_graph):
        # denser patterns must not be estimated as more frequent
        est = RandomGraphEstimator(er_graph)
        assert est.estimate(get_query("q1")) >= est.estimate(get_query("q3"))
