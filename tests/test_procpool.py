"""Process worker pool: shared-memory graph residence, spawn safety,
crash recovery, shm lifecycle hygiene, and fused-kernel equivalence.

Process-spawning tests are deliberately few and batched (each service
start spawns real children); kernel and pickling tests are pure."""

from __future__ import annotations

import os
import pickle
import signal
import time

import numpy as np
import pytest

from repro.cluster import Cluster
from repro.core.engine import EngineConfig, HugeEngine
from repro.core.kernels import (chained_costs, edge_composite_index,
                                edge_member, fused_extend_candidates,
                                fused_verify_mask)
from repro.core.shm import SharedGraphStore
from repro.graph import generators as gen
from repro.obs.flight import FlightRecorder
from repro.obs.metrics import MetricsRegistry
from repro.query.pattern import get_query
from repro.serve.procpool import WorkerTask, _strip_request
from repro.serve.request import QueryRequest, QueryStatus
from repro.serve.service import FaultInjector, QueryService
from repro.testing.serving import check_service_run


def _shm_exists(name: str) -> bool:
    return os.path.exists(f"/dev/shm/{name}")


# -- shared-memory residence ------------------------------------------------


class TestSharedGraphStore:
    def test_handle_round_trip_zero_copy(self, er_graph):
        store = SharedGraphStore()
        try:
            handle = store.handle("er", er_graph)
            # handles are pickle-cheap tickets (no graph bytes)
            assert len(pickle.dumps(handle)) < 2048
            g2 = pickle.loads(pickle.dumps(handle)).attach()
            assert np.array_equal(g2.indptr, er_graph.indptr)
            assert np.array_equal(g2.indices, er_graph.indices)
            assert not g2.indptr.flags.writeable
            assert not g2.indices.flags.writeable
            # the composite edge index is preloaded, never rebuilt
            assert g2._composite is not None
            assert np.array_equal(g2._composite,
                                  edge_composite_index(er_graph))
            # repeated attach returns the cached Graph object
            assert handle.attach() is g2
            # re-requesting the same (dataset, version) re-exports nothing
            assert store.handle("er", er_graph) is handle
            assert len(store.segment_names()) == 3
        finally:
            store.close()

    def test_owner_spec_matches_hash_partition(self, er_graph):
        from repro.graph.partition import hash_partition

        store = SharedGraphStore()
        try:
            spec = store.owner_spec("er", er_graph, 4, 0)
            assert np.array_equal(
                spec.attach(), hash_partition(er_graph.num_vertices, 4, 0))
            # one export per cluster shape
            assert store.owner_spec("er", er_graph, 4, 0) is spec
            assert store.owner_spec("er", er_graph, 2, 0) is not spec
        finally:
            store.close()

    def test_close_unlinks_exactly_once(self, er_graph):
        store = SharedGraphStore()
        store.handle("er", er_graph)
        names = store.segment_names()
        assert names and all(_shm_exists(n) for n in names)
        store.close()
        assert all(not _shm_exists(n) for n in names)
        store.close()  # idempotent: second close must not raise
        with pytest.raises(RuntimeError):
            store._export_array("late", np.zeros(3, dtype=np.int64))


# -- spawn safety -----------------------------------------------------------


class TestSpawnSafety:
    """Everything that crosses the pipe must round-trip through pickle
    (the ``spawn`` start method shares nothing)."""

    def test_request_and_config_round_trip(self):
        cfg = EngineConfig(collect_results=True)
        req = QueryRequest(pattern="triangle", dataset="er", num_machines=2,
                           config=cfg, collect=True, tenant="alpha")
        clone = pickle.loads(pickle.dumps(req))
        assert clone.seq == req.seq  # identity is the seq, must survive
        assert clone.pattern == req.pattern
        assert clone.config.collect_results

    def test_strip_request_drops_cancellation_token(self):
        from repro.core.cancel import CancelToken

        cfg = EngineConfig(cancellation=CancelToken(deadline=1.0))
        req = QueryRequest(pattern="q1", dataset="er", config=cfg)
        stripped = _strip_request(req)
        assert stripped.config.cancellation is None
        assert stripped.seq == req.seq
        assert req.config.cancellation is not None  # caller's untouched
        # no token: nothing to strip, same object back
        bare = QueryRequest(pattern="q1", dataset="er")
        assert _strip_request(bare) is bare

    def test_plan_and_task_round_trip(self, er_graph):
        pattern = get_query("triangle")
        engine = HugeEngine(Cluster(er_graph, num_machines=2),
                            EngineConfig())
        plan = engine.plan(pattern)
        clone = pickle.loads(pickle.dumps(plan))
        assert clone.describe() == plan.describe()

        store = SharedGraphStore()
        try:
            task = WorkerTask(
                kind="solo", generation=7,
                requests=(QueryRequest(pattern=pattern, dataset="er"),),
                patterns=(pattern,),
                graph=store.handle("er", er_graph),
                owner=store.owner_spec("er", er_graph, 4, 0),
                deadline=time.monotonic() + 60, crash_after=3)
            t2 = pickle.loads(pickle.dumps(task))
            assert t2.generation == 7
            assert t2.requests[0].seq == task.requests[0].seq
            assert np.array_equal(t2.graph.attach().indptr, er_graph.indptr)
        finally:
            store.close()


# -- end-to-end process pool ------------------------------------------------


class TestProcessPool:
    def test_oracles_flight_labels_and_cancel(self, er_graph):
        """One batched end-to-end run: solo-identical oracles, flight
        events carrying worker pid + pool backend, and a mid-flight
        client cancel relayed into the child."""
        flight = FlightRecorder()
        svc = QueryService(datasets={"er": er_graph}, num_workers=2,
                           pool="process", flight=flight)
        svc.start()
        svc.wait_ready()
        try:
            reqs = [QueryRequest(pattern=p, dataset="er", num_machines=2,
                                 collect=c)
                    for p, c in (("triangle", True), ("q1", False),
                                 ("triangle", False), ("q2", False))]
            outcomes = [h.result(timeout=120)
                        for h in [svc.submit(r) for r in reqs]]
            assert all(o.status is QueryStatus.COMPLETED for o in outcomes)

            parent_pid = os.getpid()
            child_pids = {w.pid for w in svc._workers}
            assert parent_pid not in child_pids
            executing = [e for f in flight.flights() for e in f.events
                         if e.kind == "executing"]
            assert executing
            for e in executing:
                assert e.data["backend"] == "process"
                assert e.data["pid"] in child_pids

            # client cancel mid-run: the shared cell aborts the child's
            # engine at its next poll, the parent restores the reason
            victim = QueryRequest(pattern="q4", dataset="er",
                                  num_machines=2)
            handle = svc.submit(victim)
            for _ in range(2000):
                if handle.status is QueryStatus.RUNNING:
                    break
                time.sleep(0.001)
            handle.cancel("client gave up")
            outcome = handle.result(timeout=120)
            # tiny queries may legitimately win the race and complete
            assert outcome.status in (QueryStatus.CANCELLED,
                                      QueryStatus.COMPLETED)
            if outcome.status is QueryStatus.CANCELLED:
                assert outcome.error == "client gave up"
        finally:
            svc.stop()
        assert not check_service_run(svc, reqs, outcomes, er_graph)

    def test_crash_kill_and_segment_hygiene(self, er_graph):
        """Batched fault-tolerance run: injected child crash recovered
        by retry, a SIGKILL'ed child recovered, crash metrics labelled
        with the backend, and every shm segment unlinked exactly once
        on stop despite the carnage."""
        inj = FaultInjector()
        reg = MetricsRegistry()
        flight = FlightRecorder()
        svc = QueryService(datasets={"er": er_graph}, num_workers=2,
                           pool="process", injector=inj, metrics=reg,
                           flight=flight, backoff_base_s=0.01)
        svc.start()
        svc.wait_ready()
        try:
            reqs = [QueryRequest(pattern="triangle", dataset="er",
                                 num_machines=2),
                    QueryRequest(pattern="q1", dataset="er",
                                 num_machines=2)]
            inj.crash(reqs[0].seq, attempt=1, after_polls=3)
            outcomes = [h.result(timeout=120)
                        for h in [svc.submit(r) for r in reqs]]
            assert all(o.status is QueryStatus.COMPLETED for o in outcomes)
            assert outcomes[0].attempts == 2
            assert inj.injected == 1

            crash_events = [e for f in flight.flights() for e in f.events
                            if e.kind == "crash"]
            assert crash_events
            assert crash_events[0].data["backend"] == "process"
            assert crash_events[0].data["pid"] != os.getpid()

            # a hard SIGKILL (no injected exception at all): the next
            # query rides the corpse, crashes, and retries to completion
            os.kill(svc._workers[0].pid, signal.SIGKILL)
            time.sleep(0.1)
            extra = [QueryRequest(pattern="triangle", dataset="er",
                                  num_machines=2) for _ in range(2)]
            outcomes2 = [h.result(timeout=120)
                         for h in [svc.submit(r) for r in extra]]
            assert all(o.status is QueryStatus.COMPLETED
                       for o in outcomes2)
            assert outcomes2[0].count == outcomes[0].count

            stats = svc.stats()
            assert stats.worker_crashes == 2
            assert reg.get("repro_serve_worker_crashes_total") \
                .get("process") == 2
            assert reg.get("repro_serve_retries_total").get("process") == 2
            assert stats.delivery_violations == 0

            segs = list(svc._procpool.store.segment_names())
            assert segs and all(_shm_exists(n) for n in segs)
        finally:
            svc.stop()
        assert not check_service_run(svc, reqs + extra,
                                     outcomes + outcomes2, er_graph,
                                     injected_crashes=1)
        assert all(not _shm_exists(n) for n in segs)
        svc.stop()  # idempotent; must not attempt a second unlink
        svc._procpool.close()


# -- fused PULL-EXTEND kernels ----------------------------------------------


def _reference_extend(indptr, indices, comp, num_vertices, rows,
                      verts_sorted, lt, gt, labels, new_label):
    """The historical multi-pass pipeline: per-column ``edge_member``
    loop with two compactions (pre-fusion ``ExtendOp._process_vector``)."""
    n = len(rows)
    cand_vid = verts_sorted[:, 0]
    L = indptr[cand_vid + 1] - indptr[cand_vid]
    E = int(L.sum())
    row_ids = np.repeat(np.arange(n), L)
    ramp = np.arange(E) - np.repeat(np.cumsum(L) - L, L)
    cand = indices[np.repeat(indptr[cand_vid], L) + ramp]
    keep = np.ones(E, dtype=bool)
    for w in range(1, verts_sorted.shape[1]):
        keep &= edge_member(comp, num_vertices,
                            verts_sorted[row_ids, w], cand)
    if new_label is not None and labels is not None:
        keep &= labels[cand] == new_label
    cand, row_ids = cand[keep], row_ids[keep]
    keep = ~(cand[:, None] == rows[row_ids]).any(axis=1)
    for p in lt:
        keep &= cand < rows[row_ids, p]
    for p in gt:
        keep &= cand > rows[row_ids, p]
    cand, row_ids = cand[keep], row_ids[keep]
    return cand, row_ids, np.bincount(row_ids, minlength=n)


class TestFusedKernels:
    @pytest.mark.parametrize("seed", range(6))
    def test_fused_extend_matches_reference(self, seed):
        rng = np.random.default_rng(seed)
        g = gen.erdos_renyi(30 + 5 * seed, 0.15, seed=seed)
        comp = edge_composite_index(g)
        n_rows, arity, W = int(rng.integers(1, 40)), 3, int(
            rng.integers(1, 3))
        rows = rng.integers(0, g.num_vertices, size=(n_rows, arity))
        verts_sorted = rows[:, :W].copy()
        labels = rng.integers(0, 3, size=g.num_vertices) \
            if seed % 2 else None
        new_label = 1 if labels is not None else None
        lt, gt = ((0,), (1,)) if seed % 3 == 0 else ((), (0,))
        ref = _reference_extend(g.indptr, g.indices, comp, g.num_vertices,
                                rows, verts_sorted, lt, gt, labels,
                                new_label)
        got = fused_extend_candidates(g.indptr, g.indices, comp,
                                      g.num_vertices, rows, verts_sorted,
                                      lt, gt, labels, new_label)
        for a, b in zip(got, ref):
            assert np.array_equal(a, b)
        # identical counts => bit-identical IEEE cost replay
        base = rng.random(n_rows)
        assert np.array_equal(chained_costs(base, got[2], 0.25),
                              chained_costs(base, ref[2], 0.25))

    @pytest.mark.parametrize("seed", range(4))
    def test_fused_verify_matches_reference(self, seed):
        rng = np.random.default_rng(100 + seed)
        g = gen.erdos_renyi(40, 0.2, seed=seed)
        comp = edge_composite_index(g)
        n, W = 50, 2
        verts = rng.integers(0, g.num_vertices, size=(n, W))
        targets = rng.integers(0, g.num_vertices, size=n)
        labels = rng.integers(0, 2, size=g.num_vertices) \
            if seed % 2 else None
        new_label = 0 if labels is not None else None
        ref = np.ones(n, dtype=bool)
        for w in range(W):
            ref &= edge_member(comp, g.num_vertices, verts[:, w], targets)
        if new_label is not None:
            ref &= labels[targets] == new_label
        got = fused_verify_mask(comp, g.num_vertices, verts, targets,
                                labels, new_label)
        assert np.array_equal(got, ref)

    def test_empty_and_degenerate_shapes(self):
        g = gen.erdos_renyi(10, 0.3, seed=1)
        comp = edge_composite_index(g)
        rows = np.zeros((0, 2), dtype=np.int64)
        cand, row_ids, counts = fused_extend_candidates(
            g.indptr, g.indices, comp, g.num_vertices, rows,
            rows.copy(), (), (), None, None)
        assert len(cand) == 0 and len(counts) == 0
        # W == 1: no membership columns at all, candidates pass through
        rows = np.array([[0, 1]], dtype=np.int64)
        cand, row_ids, counts = fused_extend_candidates(
            g.indptr, g.indices, comp, g.num_vertices, rows,
            rows[:, :1], (), (), None, None)
        nbrs = set(g.neighbours(0).tolist()) - {0, 1}
        assert set(cand.tolist()) == nbrs and counts[0] == len(nbrs)
