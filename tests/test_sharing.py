"""Work-sharing and result-cache tests for :mod:`repro.serve`.

The contract: sharing a plan prefix across concurrently queued requests,
or serving a repeat request from the result cache, must be **observably
identical** to running every request solo — same count, same match
multiset, same per-request vertex ordering — while the admission ledger
still drains to zero and tenants stay isolated.
"""

import pytest

from repro.cluster import Cluster
from repro.core import EngineConfig
from repro.core.engine import HugeEngine
from repro.cluster.errors import PlanError
from repro.query import get_query
from repro.core.plan.plans import _greedy_star_decomposition
from repro.query.decompose import SubQuery, join_unit_prefix_keys
from repro.serve import (AdmissionController, LoadDriver, PlanCache,
                         QueryRequest, QueryService, QueryStatus, ResultCache,
                         WorkloadSpec, common_prefix_len, group_prefix_len,
                         plan_signature, run_query_solo, signature_of_plan)
from repro.testing import check_driver_report, check_service_run


def req(pattern="triangle", **kw):
    kw.setdefault("dataset", "er")
    kw.setdefault("num_machines", 2)
    kw.setdefault("workers_per_machine", 2)
    return QueryRequest(pattern=pattern, **kw)


@pytest.fixture()
def sharing_service(er_graph):
    """A 1-worker sharing service: queued requests pile up behind the
    single dispatch unit, the precondition for share-group formation."""
    svc = QueryService(datasets={"er": er_graph}, num_workers=1,
                       sharing=True, max_share_group=8,
                       backoff_base_s=0.01).start()
    yield svc
    svc.stop()


def _units_from_order(pattern, order):
    """HUGE-style join units for a connected vertex order: first edge,
    then one back-edge star per further vertex (mirrors ``from_order``)."""
    def norm(u, v):
        return (u, v) if u < v else (v, u)

    units = [SubQuery(frozenset({norm(order[0], order[1])}))]
    for i in range(2, len(order)):
        back = pattern.neighbours(order[i]) & set(order[:i])
        units.append(SubQuery(frozenset(norm(order[i], u) for u in back)))
    return units


class TestPrefixKeys:
    def test_cumulative_prefixes_end_at_full_pattern(self):
        for name in ("q1", "q2", "q4", "q5"):
            pattern = get_query(name)
            units = _greedy_star_decomposition(pattern, matched_roots=False)
            keys = join_unit_prefix_keys(units)
            assert len(keys) == len(units)
            assert keys[-1] == pattern.canonical_key()
            # cumulative unions strictly grow, so every prefix is distinct
            assert len(set(keys)) == len(keys)

    def test_isomorphic_orders_same_prefix_keys(self):
        base = get_query("q4")
        perm = {i: (i + 1) % base.num_vertices
                for i in range(base.num_vertices)}
        relabelled = base.relabel(perm, name="q4~x")
        order = list(range(base.num_vertices))
        mapped = [perm[v] for v in order]
        assert (join_unit_prefix_keys(_units_from_order(base, order))
                == join_unit_prefix_keys(_units_from_order(relabelled,
                                                           mapped)))


class TestSignatures:
    def _plan(self, er_graph, name, machines=2):
        cluster = Cluster(er_graph, num_machines=machines,
                          workers_per_machine=2, seed=0)
        engine = HugeEngine(cluster, EngineConfig())
        return engine.plan(get_query(name).canonical_form()[0])

    def test_identical_patterns_identical_signatures(self, er_graph):
        a = signature_of_plan(self._plan(er_graph, "triangle"))
        b = signature_of_plan(self._plan(er_graph, "triangle"))
        assert a is not None and a == b
        assert common_prefix_len(a, b) == len(a)

    def test_group_prefix_len_spans_patterns(self, er_graph):
        sigs = [signature_of_plan(self._plan(er_graph, n))
                for n in ("triangle", "q4")]
        if all(s is not None for s in sigs):
            n = group_prefix_len(sigs)
            assert 0 <= n <= min(len(s) for s in sigs)

    def test_none_signature_never_groups(self):
        assert group_prefix_len([None, None]) == 0
        assert common_prefix_len(None, ((1,),)) == 0


class TestRunShared:
    def _engine(self, er_graph):
        cluster = Cluster(er_graph, num_machines=2,
                          workers_per_machine=2, seed=0)
        return HugeEngine(cluster, EngineConfig(collect_results=True))

    def _solo(self, er_graph, name):
        engine = self._engine(er_graph)
        return engine.run(get_query(name).canonical_form()[0])

    @pytest.mark.parametrize("names", [
        ("triangle", "triangle"),           # full dedup: empty suffixes
        ("triangle", "q4"),                 # shared scan, distinct suffixes
        ("q2", "q5"),
        ("triangle", "q4", "triangle"),
    ])
    def test_bit_identical_to_solo(self, er_graph, names):
        engine = self._engine(er_graph)
        plans = [engine.plan(get_query(n).canonical_form()[0])
                 for n in names]
        try:
            shared = engine.run_shared(plans, collects=[True] * len(names))
        except PlanError:
            pytest.skip("patterns share no plan prefix on this graph")
        for name, res in zip(names, shared):
            solo = self._solo(er_graph, name)
            assert res.count == solo.count
            assert sorted(res.matches) == sorted(solo.matches)

    def test_count_only_members(self, er_graph):
        engine = self._engine(er_graph)
        plans = [engine.plan(get_query(n).canonical_form()[0])
                 for n in ("triangle", "triangle")]
        collected, counted = engine.run_shared(plans, collects=[True, False])
        assert collected.count == counted.count
        assert collected.matches is not None and counted.matches is None

    def test_shared_report_is_single_ledger(self, er_graph):
        engine = self._engine(er_graph)
        plans = [engine.plan(get_query("triangle").canonical_form()[0])
                 for _ in range(3)]
        results = engine.run_shared(plans)
        assert results[0].report is results[1].report is results[2].report

    def test_empty_group_rejected(self, er_graph):
        with pytest.raises(ValueError):
            self._engine(er_graph).run_shared([])


class TestServiceSharing:
    def test_grouped_requests_bit_identical_to_solo(self, sharing_service,
                                                    er_graph):
        svc = sharing_service
        names = ["triangle", "triangle", "q4", "triangle", "q2"]
        requests = [req(n, collect=True) for n in names]
        handles = [svc.submit(r) for r in requests]
        outcomes = [h.result(timeout=120) for h in handles]
        assert all(o.status is QueryStatus.COMPLETED for o in outcomes)
        # the backlogged triangles must actually have grouped
        assert svc.stats().shared_groups >= 1
        assert max(o.shared_group for o in outcomes) > 1
        for r, o in zip(requests, outcomes):
            solo = run_query_solo(er_graph, r)
            assert o.count == solo.count
            assert sorted(o.collected) == sorted(solo.collected)

    def test_oracles_pass_with_sharing(self, sharing_service, er_graph):
        svc = sharing_service
        requests = [req("triangle", collect=(i % 2 == 0)) for i in range(6)]
        handles = [svc.submit(r) for r in requests]
        outcomes = [h.result(timeout=120) for h in handles]
        svc.stop()
        failures = check_service_run(svc, requests, outcomes, er_graph)
        assert not failures, failures

    def test_stream_requests_never_group(self, sharing_service):
        svc = sharing_service
        handles = [svc.submit(req("triangle", stream=True))
                   for _ in range(3)]
        for h in handles:
            rows = [row for chunk in h.chunks(timeout=120)
                    for row in chunk.rows]
            o = h.result(timeout=120)
            assert o.status is QueryStatus.COMPLETED
            assert o.shared_group == 1
            assert len(rows) == o.count

    def test_member_cancel_spares_the_group(self, er_graph):
        svc = QueryService(datasets={"er": er_graph}, num_workers=1,
                           sharing=True, backoff_base_s=0.01).start()
        try:
            handles = [svc.submit(req("q4", collect=True))
                       for _ in range(4)]
            handles[-1].cancel("client changed its mind")
            outcomes = [h.result(timeout=120) for h in handles]
            statuses = [o.status for o in outcomes]
            assert statuses.count(QueryStatus.COMPLETED) >= 3
            solo = run_query_solo(er_graph, req("q4", collect=True))
            for o in outcomes:
                if o.status is QueryStatus.COMPLETED:
                    assert o.count == solo.count
        finally:
            svc.stop()


class TestResultCacheUnit:
    def test_capacity_eviction_is_lru(self):
        cache = ResultCache(capacity_bytes=600.0)
        cache.put(("a",), 1, None, "d", "t")
        cache.put(("b",), 2, None, "d", "t")
        assert cache.get(("a",)) is not None  # refresh a's recency
        cache.put(("c",), 3, None, "d", "t")  # evicts b, the LRU entry
        assert cache.get(("b",)) is None
        assert cache.get(("a",)).count == 1
        assert cache.get(("c",)).count == 3
        assert cache.stats.as_dict()["evictions"] == 1

    def test_need_matches_misses_count_only(self):
        cache = ResultCache(capacity_bytes=1e6)
        cache.put(("k",), 7, None, "d", "t")
        assert cache.get(("k",), need_matches=True) is None
        assert cache.get(("k",)).count == 7

    def test_collected_entry_never_downgraded(self):
        cache = ResultCache(capacity_bytes=1e6)
        cache.put(("k",), 2, [(0, 1), (1, 2)], "d", "t")
        cache.put(("k",), 2, None, "d", "t")
        assert cache.get(("k",), need_matches=True).matches == [(0, 1),
                                                               (1, 2)]

    def test_uncacheable_oversized_entry(self):
        cache = ResultCache(capacity_bytes=300.0)
        ok = cache.put(("k",), 100, [(i, i, i) for i in range(100)],
                       "d", "t")
        assert not ok and len(cache) == 0
        assert cache.stats.as_dict()["uncacheable"] == 1

    def test_invalidate_filters(self):
        cache = ResultCache(capacity_bytes=1e6)
        cache.put(("a",), 1, None, "d1", "t1")
        cache.put(("b",), 2, None, "d1", "t2")
        cache.put(("c",), 3, None, "d2", "t1")
        assert cache.invalidate(dataset="d1", tenant="t2") == 1
        assert cache.get(("b",)) is None and len(cache) == 2
        assert cache.invalidate(dataset="d1") == 1
        assert cache.invalidate() == 1
        assert len(cache) == 0

    def test_ledger_accounting(self):
        ledger = AdmissionController(budget_bytes=1e9)
        cache = ResultCache(capacity_bytes=1e6, ledger=ledger)
        cache.put(("a",), 1, [(0, 1, 2)], "d", "t")
        assert ledger.cache_reserved_bytes == cache.resident_bytes > 0
        assert ledger.reserved_bytes == ledger.cache_reserved_bytes
        cache.clear()
        assert ledger.cache_reserved_bytes == 0.0
        assert ledger.reserved_bytes == 0.0
        assert ledger.stats.underflows == 0


class TestResultCacheService:
    def _svc(self, er_graph, **kw):
        kw.setdefault("num_workers", 1)
        kw.setdefault("result_cache_bytes", 4e6)
        kw.setdefault("backoff_base_s", 0.01)
        return QueryService(datasets={"er": er_graph}, **kw).start()

    def test_repeat_request_hits_and_matches_solo(self, er_graph):
        svc = self._svc(er_graph)
        try:
            first = svc.submit(req("triangle", collect=True)).result(60)
            again = svc.submit(req("triangle", collect=True)).result(60)
            assert not first.result_cache_hit and again.result_cache_hit
            assert again.count == first.count
            assert sorted(again.collected) == sorted(first.collected)
            assert svc.stats().result_cache_hits == 1
        finally:
            svc.stop()

    def test_relabelled_pattern_hits_in_request_order(self, er_graph):
        svc = self._svc(er_graph)
        try:
            base = get_query("triangle")
            perm = {0: 2, 1: 0, 2: 1}
            relabelled = base.relabel(perm, name="tri~r")
            svc.submit(req("triangle", collect=True)).result(60)
            hit = svc.submit(req(relabelled, collect=True)).result(60)
            assert hit.result_cache_hit
            solo = run_query_solo(er_graph, req(relabelled, collect=True))
            assert sorted(hit.collected) == sorted(solo.collected)
        finally:
            svc.stop()

    def test_tenant_isolation(self, er_graph):
        svc = self._svc(er_graph)
        try:
            svc.submit(req("triangle", tenant="alpha")).result(60)
            other = svc.submit(req("triangle", tenant="beta")).result(60)
            assert not other.result_cache_hit
        finally:
            svc.stop()

    def test_graph_version_bump_invalidates(self, er_graph):
        svc = self._svc(er_graph)
        try:
            svc.submit(req("triangle")).result(60)
            assert svc.submit(req("triangle")).result(60).result_cache_hit
            svc.register_dataset("er", er_graph)  # version bump
            after = svc.submit(req("triangle")).result(60)
            assert not after.result_cache_hit
        finally:
            svc.stop()

    def test_count_only_hit_does_not_serve_collectors(self, er_graph):
        svc = self._svc(er_graph)
        try:
            svc.submit(req("triangle", collect=False)).result(60)
            collector = svc.submit(req("triangle", collect=True)).result(60)
            assert not collector.result_cache_hit
            assert collector.collected is not None
        finally:
            svc.stop()

    def test_stop_drains_cache_reservations(self, er_graph):
        svc = self._svc(er_graph)
        svc.submit(req("triangle", collect=True)).result(60)
        assert svc.admission.cache_reserved_bytes > 0
        svc.stop()
        assert svc.admission.cache_reserved_bytes == 0.0
        assert svc.admission.reserved_bytes == 0.0


class TestDriverSharing:
    def test_zipf_spec_is_deterministic_and_skewed(self):
        spec = WorkloadSpec(num_queries=64, patterns=("triangle", "q1",
                                                      "q2", "q3", "q4"),
                            seed=7, zipf_s=1.5, relabel_fraction=0.0)
        names = [r.pattern for r in spec.build()]
        assert names == [r.pattern for r in spec.build()]
        counts = {n: names.count(n) for n in set(names)}
        assert counts.get("triangle", 0) == max(counts.values())

    def test_shared_run_verifies_bit_identical(self, er_graph):
        spec = WorkloadSpec(num_queries=10, dataset="er", seed=3,
                            num_machines=2, workers_per_machine=2,
                            relabel_fraction=0.25, collect_fraction=0.5,
                            zipf_s=1.2, tenants=("a", "b"))
        driver = LoadDriver(er_graph, spec, num_workers=2, sharing=True,
                            result_cache_bytes=4e6)
        report = driver.run(verify=True)
        assert report.verified, report.verify_failures
        assert not check_driver_report(report)
        assert report.counts_by_status.get("completed") == 10
