"""Tests for the observability layer (repro.obs): span semantics, the
zero-cost-when-disabled guarantee, aggregation, export, and the
satellite invariants (unified cache hit rate, underflow counting,
JSON-ready result dicts)."""

from __future__ import annotations

import json

import pytest

from repro.cluster import Cluster, CostModel
from repro.cluster.metrics import Metrics
from repro.core import EngineConfig, HugeEngine
from repro.obs import (ENGINE, NULL_TRACER, Trace, Tracer,
                       check_span_nesting)
from repro.obs.analyze import analyze
from repro.query import get_query

# close to exact: the only slack is float addition order
_TOL = 1e-9


def traced_run(cluster, pattern="triangle", config=None):
    tracer = Tracer()
    engine = HugeEngine(cluster, config)
    result = engine.run(get_query(pattern), tracer=tracer)
    return result, result.trace


# -- unit: Trace / Tracer ------------------------------------------------------


class TestTraceUnit:
    def test_covered_time_merges_overlaps(self):
        tr = Trace(num_machines=1)
        t = Tracer()
        t.trace = tr
        t.complete("a", 0, 0.0, 2.0)
        t.complete("b", 0, 1.0, 3.0)   # overlaps a
        t.complete("c", 0, 5.0, 6.0)   # disjoint
        assert tr.covered_time(0) == pytest.approx(4.0)
        assert tr.coverage(4.0, (4.0,)) == pytest.approx(1.0)

    def test_coverage_uses_critical_machine(self):
        tr = Trace(num_machines=2)
        t = Tracer()
        t.trace = tr
        t.complete("a", 0, 0.0, 1.0)
        t.complete("b", 1, 0.0, 8.0)
        # machine 1 defines the 8s total; machine 0's short span is ignored
        assert tr.coverage(8.0, (1.0, 8.0)) == pytest.approx(1.0)
        assert tr.coverage(8.0, (8.0, 1.0)) == pytest.approx(1.0 / 8.0)

    def test_nesting_checker_flags_partial_overlap(self):
        tr = Trace(num_machines=1)
        t = Tracer()
        t.trace = tr
        t.complete("outer", 0, 0.0, 2.0)
        t.complete("inner", 0, 1.0, 3.0)
        violations = check_span_nesting(tr)
        assert len(violations) == 1
        assert "partially overlaps" in violations[0]

    def test_nesting_checker_accepts_contained_and_shared_endpoints(self):
        tr = Trace(num_machines=2)
        t = Tracer()
        t.trace = tr
        t.complete("outer", 0, 0.0, 4.0)
        t.complete("inner", 0, 0.0, 2.0)   # shared start
        t.complete("inner2", 0, 2.0, 4.0)  # shared end, adjacent
        t.complete("other", 1, 1.0, 3.0)   # different machine: independent
        assert check_span_nesting(tr) == []

    def test_per_operator_splits_stage_and_batch_spans(self):
        tr = Trace(num_machines=1)
        t = Tracer()
        t.trace = tr
        t.declare_operator("s0.1", "PULL-EXTEND", (0, 1, 2))
        t.complete("fetch", 0, 0.0, 1.0,
                   {"op": "s0.1", "hits": 3, "misses": 1})
        t.complete("intersect", 0, 1.0, 1.5, {"op": "s0.1"})
        t.complete("PULL-EXTEND", 0, 0.0, 1.5,
                   {"op": "s0.1", "in": 10, "out": 20, "bytes": 64})
        st = tr.per_operator()["s0.1"]
        assert st.kind == "PULL-EXTEND"
        assert st.fetch_time_s == pytest.approx(1.0)
        assert st.intersect_time_s == pytest.approx(0.5)
        assert st.time_s == pytest.approx(1.5)   # batch span only
        assert st.batches == 1
        assert st.tuples_in == 10 and st.tuples_out == 20 and st.bytes == 64
        assert st.cache_hits == 3 and st.cache_misses == 1
        assert st.cache_hit_rate == pytest.approx(0.75)

    def test_null_tracer_is_disabled_and_inert(self):
        assert NULL_TRACER.enabled is False
        assert NULL_TRACER.trace is None
        # every recording call is a no-op, not an error
        NULL_TRACER.bind(None)
        NULL_TRACER.complete("x", 0, 0.0, 1.0)
        NULL_TRACER.instant("x", 0)
        NULL_TRACER.counter("x", 0, {"v": 1})
        NULL_TRACER.declare_operator("s0.0", "SCAN", (0, 1))
        assert NULL_TRACER.now(0) == 0.0

    def test_tracer_clock_reads_metrics(self):
        metrics = Metrics(2, 1, CostModel())
        t = Tracer()
        t.bind(metrics)
        metrics.charge_ops(1, 1e9)
        assert t.now(1) == pytest.approx(metrics.machine_time(1))
        assert t.now(0) == 0.0
        assert t.now(ENGINE) == pytest.approx(metrics.elapsed())
        assert t.now_all() == [t.now(0), t.now(1)]


# -- run-level semantics -------------------------------------------------------


class TestRunTraceSemantics:
    @pytest.fixture(scope="class")
    def run(self, er_graph):
        cluster = Cluster(er_graph, num_machines=4, workers_per_machine=4,
                          seed=1)
        result, trace = traced_run(cluster, "q1")
        return result, trace

    def test_spans_strictly_nest(self, run):
        _, trace = run
        assert check_span_nesting(trace) == []

    def test_timestamps_monotone_and_bounded(self, run):
        result, trace = run
        total = result.report.total_time_s
        for s in trace.spans:
            assert 0.0 <= s.t0 <= s.t1
            assert s.t1 <= total + _TOL
        for i in trace.instants:
            assert 0.0 <= i.ts <= total + _TOL

    def test_every_declared_operator_has_spans(self, run):
        _, trace = run
        assert trace.operators  # declarations happened
        spanned = {s.arg("op") for s in trace.spans}
        for opid in trace.operators:
            assert opid in spanned

    def test_fetch_plus_intersect_accounts_for_batch_time(self, run):
        _, trace = run
        stats = trace.per_operator()
        checked = 0
        for st in stats.values():
            if st.fetch_time_s == 0.0:
                continue  # scans and joins have no fetch stage
            checked += 1
            assert (st.fetch_time_s + st.intersect_time_s
                    == pytest.approx(st.time_s, rel=1e-9, abs=1e-12))
        assert checked > 0

    def test_coverage_exceeds_95_percent(self, run):
        result, trace = run
        cov = trace.coverage(result.report.total_time_s,
                             result.report.per_machine_time_s)
        assert cov > 0.95

    def test_phase_spans_present(self, run):
        _, trace = run
        names = {s.name for s in trace.spans}
        assert {"plan", "translate", "execute"} <= names
        engine_spans = trace.machine_spans(ENGINE)
        assert any(s.name == "execute" for s in engine_spans)

    def test_chrome_export_is_valid(self, run, tmp_path):
        _, trace = run
        path = tmp_path / "t.json"
        trace.save(str(path))
        data = json.loads(path.read_text())
        assert data["displayTimeUnit"] == "ms"
        events = data["traceEvents"]
        assert events
        names = {e["args"]["name"] for e in events
                 if e["ph"] == "M" and e["name"] == "process_name"}
        assert "engine" in names and "machine 0" in names
        for e in events:
            assert {"ph", "name", "pid", "tid"} <= e.keys()
            if e["ph"] == "X":
                assert e["ts"] >= 0 and e["dur"] >= 0
            elif e["ph"] in ("i", "C"):
                assert e["ts"] >= 0

    def test_queue_and_cache_counters_sampled(self, run):
        _, trace = run
        counter_names = {c.name for c in trace.counters}
        assert any(n.startswith("queue ") for n in counter_names)
        assert "cache occupancy" in counter_names


class TestZeroCostWhenDisabled:
    def test_traced_run_bit_identical_to_untraced(self, er_graph):
        def go(tracer):
            cluster = Cluster(er_graph, num_machines=3,
                              workers_per_machine=4, seed=2)
            engine = HugeEngine(cluster)
            return engine.run(get_query("q1"), tracer=tracer)

        plain = go(None)
        traced = go(Tracer())
        assert plain.trace is None
        assert traced.trace is not None
        assert plain.count == traced.count
        assert plain.report.as_dict() == traced.report.as_dict()
        assert plain.cache_hit_rate == traced.cache_hit_rate
        assert plain.fetch_time_s == traced.fetch_time_s


# -- satellites ----------------------------------------------------------------


class TestCacheHitRateUnification:
    def test_result_and_report_hit_rates_agree(self, cluster):
        engine = HugeEngine(cluster)
        res = engine.run(get_query("q1"))
        assert res.cache_hit_rate == res.report.cache_hit_rate
        total = sum(m.cache_hits + m.cache_misses
                    for m in cluster.metrics.machines)
        assert total > 0  # the square query does fetch remotely


class TestMemUnderflows:
    def test_free_underflow_is_counted_and_clamped(self):
        metrics = Metrics(2, 1, CostModel())
        metrics.alloc(0, 100)
        metrics.free(0, 100)
        assert metrics.report().mem_underflows == 0
        metrics.alloc(1, 50)
        metrics.free(1, 80)  # frees more than was ever allocated
        rep = metrics.report()
        assert rep.mem_underflows == 1
        assert metrics.machines[1].cur_mem_bytes == 0.0

    def test_engine_run_has_no_underflows(self, cluster):
        engine = HugeEngine(cluster)
        res = engine.run(get_query("q1"))
        assert res.report.mem_underflows == 0

    def test_memory_oracle_flags_underflows(self):
        from repro.testing.configs import smoke_matrix
        from repro.testing.oracles import CaseOutcome, _check_memory_bound
        from repro.testing.workloads import random_workload

        workload = random_workload(0, max_vertices=8)
        spec = smoke_matrix()[0]
        metrics = Metrics(1, 1, CostModel())
        metrics.free(0, 64)
        outcome = CaseOutcome(spec_name=spec.name, report=metrics.report())
        failure = _check_memory_bound(workload, spec, outcome)
        assert failure is not None
        assert failure.oracle == "memory-bound"
        assert "underflow" in failure.message


class TestAsDict:
    def test_enumeration_result_round_trips_json(self, cluster):
        engine = HugeEngine(cluster, EngineConfig(collect_results=True))
        res = engine.run(get_query("triangle"))
        data = json.loads(json.dumps(res.as_dict()))
        assert data["count"] == res.count
        assert data["report"]["total_time_s"] == res.report.total_time_s
        assert data["report"]["mem_underflows"] == 0
        assert len(data["report"]["per_machine_time_s"]) == \
            cluster.num_machines
        assert "ExecutionPlan" in data["plan"]

    def test_baseline_result_round_trips_json(self, cluster):
        from repro.baselines import BigJoinEngine

        res = BigJoinEngine(cluster).run(get_query("triangle"))
        data = json.loads(json.dumps(res.as_dict()))
        assert data["engine"] == "BiGJoin"
        assert data["count"] == res.count
        assert data["report"]["mem_underflows"] == 0


# -- bounded traces ------------------------------------------------------------


class TestTraceEventCap:
    def test_oldest_events_drop_first_deterministically(self):
        tr = Trace(num_machines=1, max_events=4)
        t = Tracer()
        t.trace = tr
        for i in range(6):
            t.complete(f"s{i}", 0, float(i), float(i) + 0.5)
        assert len(tr.spans) == 4
        assert [s.name for s in tr.spans] == ["s2", "s3", "s4", "s5"]
        assert tr.dropped_events == 2

    def test_cap_interleaves_streams_in_append_order(self):
        """The cap is global across spans/instants/counters: whichever
        event was appended first drops first, regardless of stream."""
        from repro.obs.trace import CounterEvent, InstantEvent, SpanEvent

        tr = Trace(num_machines=1, max_events=3)
        tr.add_span(SpanEvent("span0", 0, 0.0, 1.0))   # oldest → dropped
        tr.add_instant(InstantEvent("inst0", 0, 0.5))  # second → dropped
        tr.add_counter(CounterEvent("cnt0", 0, 0.6, {"v": 1}))
        tr.add_span(SpanEvent("span1", 0, 1.0, 2.0))
        tr.add_instant(InstantEvent("inst1", 0, 2.0))
        assert [c.name for c in tr.counters] == ["cnt0"]
        assert [s.name for s in tr.spans] == ["span1"]
        assert [i.name for i in tr.instants] == ["inst1"]
        assert tr.dropped_events == 2

    def test_dropped_count_exported_in_chrome_metadata(self):
        tr = Trace(num_machines=1, max_events=1)
        t = Tracer(max_events=1)
        t.trace = tr
        t.complete("a", 0, 0.0, 1.0)
        t.complete("b", 0, 1.0, 2.0)
        data = tr.to_chrome()
        assert data["otherData"]["dropped_events"] == 1

    def test_uncapped_trace_never_drops(self):
        tr = Trace(num_machines=1)
        t = Tracer()
        t.trace = tr
        for i in range(100):
            t.complete(f"s{i}", 0, float(i), float(i) + 0.5)
        assert len(tr.spans) == 100
        assert tr.dropped_events == 0
        assert tr.to_chrome()["otherData"]["dropped_events"] == 0

    def test_capped_tracer_run_stays_bit_identical(self, er_graph):
        """Dropping old events must not perturb the simulation."""
        def go(tracer):
            cluster = Cluster(er_graph, num_machines=3,
                              workers_per_machine=4, seed=2)
            return HugeEngine(cluster).run(get_query("q1"), tracer=tracer)

        plain = go(None)
        capped = go(Tracer(max_events=50))
        assert len(capped.trace.spans) <= 50
        assert capped.trace.dropped_events > 0
        assert plain.count == capped.count
        assert plain.report.as_dict() == capped.report.as_dict()


# -- the metrics bridge --------------------------------------------------------


class TestMetricsTracer:
    def test_instrumented_run_bit_identical(self, er_graph):
        """The tentpole invariant: aggregating engine metrics through the
        tracer protocol must not move a single simulated number."""
        from repro.obs import MetricsRegistry, MetricsTracer

        def go(tracer):
            cluster = Cluster(er_graph, num_machines=3,
                              workers_per_machine=4, seed=2)
            return HugeEngine(cluster).run(get_query("q1"), tracer=tracer)

        plain = go(None)
        reg = MetricsRegistry()
        metered = go(MetricsTracer(reg))
        assert plain.count == metered.count
        assert plain.report.as_dict() == metered.report.as_dict()
        assert plain.cache_hit_rate == metered.cache_hit_rate

    def test_engine_families_aggregated(self, cluster):
        from repro.obs import (MetricsRegistry, MetricsTracer,
                               check_exposition, record_result)

        reg = MetricsRegistry()
        engine = HugeEngine(cluster)
        res = engine.run(get_query("q1"), tracer=MetricsTracer(reg))
        record_result(reg, res)

        rounds = reg.get("repro_engine_scheduler_rounds_total")
        assert rounds.value > 0
        batch = reg.get("repro_engine_batch_rows")
        ops = {key[0] for key in batch._children}
        assert "SCAN" in ops
        assert "PULL-EXTEND" in ops or "JOIN-OUT" in ops
        cache = reg.get("repro_engine_cache_requests_total")
        hits, misses = cache.get("hit"), cache.get("miss")
        assert hits + misses > 0
        # bridged totals agree with the engine's own report
        assert reg.get("repro_engine_matches_total").value == res.count
        assert reg.get("repro_engine_sim_seconds_total").get("total") == \
            pytest.approx(res.report.total_time_s)
        assert reg.get("repro_engine_bytes_transferred_total").value == \
            res.report.bytes_transferred
        hr = reg.get("repro_engine_last_cache_hit_rate").value
        assert hr == pytest.approx(res.cache_hit_rate)
        assert check_exposition(reg.expose()) == []

    def test_wraps_inner_tracer_and_shares_trace(self, cluster):
        from repro.obs import MetricsRegistry, MetricsTracer

        reg = MetricsRegistry()
        inner = Tracer()
        mt = MetricsTracer(reg, inner=inner)
        res = HugeEngine(cluster).run(get_query("triangle"), tracer=mt)
        # the wrapped tracer recorded the full trace...
        assert res.trace is inner.trace
        assert res.trace.spans
        # ...and the registry aggregated alongside
        assert reg.get("repro_engine_scheduler_rounds_total").value > 0

    def test_census_recorded(self, cluster):
        from repro.apps.mining import motif_census
        from repro.obs import MetricsRegistry, record_census

        reg = MetricsRegistry()
        census = motif_census(cluster, 3)
        record_census(reg, census)
        assert reg.get("repro_census_subgraphs_total").value == \
            census.total_subgraphs
        canon = reg.get("repro_census_canonical_total")
        assert canon.get("call") == census.canonical_calls
        assert canon.get("memo_hit") == census.memo_hits
        assert reg.get("repro_census_classes").value == len(census.counts)


# -- explain --analyze ---------------------------------------------------------


class TestAnalyze:
    def test_rows_cover_plan_and_coverage_is_high(self, cluster):
        engine = HugeEngine(cluster)
        report = analyze(engine, get_query("q1"))
        assert len(report.rows) == len(list(report.result.plan.root.nodes()))
        matched = [r for r in report.rows if r.opid is not None]
        assert matched  # at least the root operator materialises
        assert report.coverage > 0.95
        text = report.render()
        assert "analyze (estimate vs traced run)" in text
        assert "est |R|" in text
        assert "matches:" in text
