"""Integration tests: full pipelines across modules."""

import networkx as nx
import numpy as np
import pytest

from repro import (Cluster, CostModel, EngineConfig, HugeEngine,
                   count_subgraphs, enumerate_subgraphs, get_query)
from repro.baselines import (BenuEngine, BigJoinEngine, RadsEngine,
                             SeedEngine, count_matches)
from repro.graph import generators as gen, load_dataset, load_edge_list, \
    save_edge_list


class TestFileToAnswerPipeline:
    def test_edge_list_roundtrip_query(self, tmp_path):
        g = gen.power_law_cluster(60, 3, triad_p=0.6, seed=13)
        path = tmp_path / "graph.txt"
        save_edge_list(g, path)
        loaded = load_edge_list(path, relabel=False)
        assert count_subgraphs(loaded, "triangle") == \
            count_subgraphs(g, "triangle")

    def test_counts_match_networkx_triangles(self):
        g = gen.erdos_renyi(60, 0.15, seed=21)
        nxg = nx.Graph(list(g.edges()))
        expect = sum(nx.triangles(nxg).values()) // 3
        assert count_subgraphs(g, "triangle") == expect

    def test_counts_match_networkx_cliques(self):
        g = gen.erdos_renyi(40, 0.3, seed=22)
        nxg = nx.Graph(list(g.edges()))
        expect = sum(1 for c in nx.enumerate_all_cliques(nxg)
                     if len(c) == 4)
        assert count_subgraphs(g, "q3") == expect


class TestDeterminism:
    def test_same_seed_same_metrics(self):
        g = load_dataset("GO")
        reports = []
        for _ in range(2):
            cl = Cluster(g, num_machines=4, seed=3)
            r = HugeEngine(cl).run(get_query("q1"))
            reports.append(r.report)
        assert reports[0].total_time_s == reports[1].total_time_s
        assert reports[0].bytes_transferred == reports[1].bytes_transferred
        assert reports[0].peak_memory_bytes == reports[1].peak_memory_bytes

    def test_partition_seed_changes_layout_not_count(self):
        g = load_dataset("GO")
        counts = set()
        for seed in (1, 2, 3):
            cl = Cluster(g, num_machines=4, seed=seed)
            counts.add(HugeEngine(cl).run(get_query("q2")).count)
        assert len(counts) == 1

    def test_engine_reusable_across_queries(self):
        g = load_dataset("GO")
        cl = Cluster(g, num_machines=4, seed=1)
        engine = HugeEngine(cl)
        for name in ("triangle", "q1", "q2"):
            q = get_query(name)
            assert engine.run(q).count == count_matches(g, q)


class TestAllEnginesAllQueries:
    """the grand agreement matrix on a structured graph"""

    @pytest.fixture(scope="class")
    def setup(self):
        g = gen.power_law_cluster(60, 3, triad_p=0.5, seed=17)
        cl = Cluster(g, num_machines=3, workers_per_machine=2, seed=1)
        return g, cl

    @pytest.mark.parametrize("qname", ["q1", "q2", "q3", "q4", "q5", "q6",
                                       "q7", "q8"])
    def test_agreement(self, setup, qname):
        g, cl = setup
        q = get_query(qname)
        expect = count_matches(g, q)
        assert HugeEngine(cl).run(q).count == expect
        assert SeedEngine(cl).run(q).count == expect
        assert BigJoinEngine(cl).run(q).count == expect
        assert BenuEngine(cl).run(q).count == expect
        assert RadsEngine(cl).run(q).count == expect


class TestCostModelMonotonicity:
    """sanity relations the simulated times must respect"""

    def test_slower_network_slower_push_systems(self):
        g = load_dataset("LJ", scale=0.6)
        times = {}
        for bw in (4e7, 4e6):
            cl = Cluster(g, num_machines=4, seed=1,
                         cost=CostModel(bandwidth_bytes_per_s=bw))
            times[bw] = SeedEngine(cl).run(
                get_query("q1")).report.total_time_s
        assert times[4e6] > times[4e7]

    def test_slower_cpu_slower_everything(self):
        g = load_dataset("GO")
        times = {}
        for rate in (1e7, 1e6):
            cl = Cluster(g, num_machines=4, seed=1,
                         cost=CostModel(compute_rate=rate))
            times[rate] = HugeEngine(cl).run(
                get_query("q1")).report.total_time_s
        assert times[1e6] > times[1e7]

    def test_more_machines_less_peak_memory_for_seed(self):
        g = load_dataset("LJ", scale=0.6)
        mems = {}
        for k in (2, 8):
            cl = Cluster(g, num_machines=k, seed=1)
            mems[k] = SeedEngine(cl).run(
                get_query("q1")).report.peak_memory_bytes
        assert mems[8] < mems[2]

    def test_kvstore_overhead_drives_benu(self):
        g = load_dataset("GO")
        times = {}
        for stall in (4e-4, 4e-6):
            cl = Cluster(g, num_machines=4, seed=1,
                         cost=CostModel(kvstore_request_s=stall))
            times[stall] = BenuEngine(cl).run(
                get_query("q1")).report.total_time_s
        assert times[4e-4] > 2 * times[4e-6]


class TestApiSurface:
    def test_enumerate_with_cost_override(self, er_graph):
        result = enumerate_subgraphs(
            er_graph, "triangle",
            cost=CostModel(compute_rate=1e6))
        assert result.count == count_matches(er_graph, get_query("triangle"))

    def test_plan_description_stringifies(self, er_graph):
        result = enumerate_subgraphs(er_graph, "q7")
        text = result.plan.describe()
        assert "q7" in text and "join" in text

    def test_throughput_property(self, er_graph):
        result = enumerate_subgraphs(er_graph, "triangle")
        assert result.throughput_per_s == pytest.approx(
            result.count / result.report.total_time_s)


class TestExternalValidation:
    """cross-check against networkx's independent VF2 matcher"""

    @pytest.mark.parametrize("name", ["triangle", "q1", "q2", "q4", "q7"])
    def test_vf2_monomorphism_counts(self, name):
        from networkx.algorithms.isomorphism import GraphMatcher

        from repro.query import automorphism_count

        g = gen.erdos_renyi(25, 0.3, seed=31)
        nxg = nx.Graph(list(g.edges()))
        q = get_query(name)
        pattern = nx.Graph(list(q.edges))
        vf2_ordered = sum(1 for _ in GraphMatcher(
            nxg, pattern).subgraph_monomorphisms_iter())
        ours = count_subgraphs(g, name)
        assert vf2_ordered == ours * automorphism_count(q)

    def test_semantics_are_non_induced(self):
        # the square count includes squares with chords (monomorphism
        # semantics, as in the paper); induced matching would skip them
        from repro.graph import Graph

        diamond = Graph.from_edges([(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)])
        assert count_subgraphs(diamond, "q1") == 1   # the chorded square
        assert count_subgraphs(diamond, "q2") == 1   # the diamond itself
