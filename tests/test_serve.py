"""Serving-semantics tests for :mod:`repro.serve`.

The contract under test: concurrency, admission control, caching,
deadlines and injected worker crashes never change *what* a query
computes — every served query is bit-identical (count and simulated
metrics) to the same request executed solo — and every submitted request
reaches exactly one terminal state while the admission ledger drains
back to zero.
"""

import threading
import time

import pytest

from repro import enumerate_subgraphs
from repro.core import CancelToken, EngineConfig, QueryCancelledError
from repro.serve import (AdmissionController, FaultInjector, LatencyRecorder,
                         LoadDriver, MultiQueue, PlanCache, Priority,
                         QueryRequest, QueryService, QueryStatus, QueueEntry,
                         WorkloadSpec, estimate_query_bytes, percentile,
                         run_query_solo)
from repro.serve.request import QueryHandle
from repro.testing import check_driver_report, check_service_run


@pytest.fixture()
def service(er_graph):
    """A started 2-worker service over the ER graph (drained on exit)."""
    svc = QueryService(datasets={"er": er_graph}, num_workers=2,
                      backoff_base_s=0.01).start()
    yield svc
    svc.stop()


def req(pattern="triangle", **kw):
    kw.setdefault("dataset", "er")
    kw.setdefault("num_machines", 2)
    kw.setdefault("workers_per_machine", 2)
    return QueryRequest(pattern=pattern, **kw)


class TestBasicServing:
    def test_single_query_matches_direct_run(self, service, er_graph):
        outcome = service.submit(req("triangle")).result(timeout=60)
        assert outcome.status is QueryStatus.COMPLETED
        assert outcome.count == enumerate_subgraphs(
            er_graph, "triangle", num_machines=2).count

    def test_concurrent_queries_bit_identical_to_solo(self, service,
                                                      er_graph):
        """The tentpole invariant: N queries racing on the pool produce
        exactly the counts *and simulated metrics* of their solo runs."""
        requests = [req(p) for p in
                    ("triangle", "q1", "q2", "q3", "triangle", "q1", "q2",
                     "q3")]
        handles = [service.submit(r) for r in requests]
        outcomes = [h.result(timeout=60) for h in handles]
        for r, o in zip(requests, outcomes):
            assert o.status is QueryStatus.COMPLETED
            solo = run_query_solo(er_graph, r)
            assert o.count == solo.count
            assert o.result.report.as_dict() == solo.result.report.as_dict()

    def test_solo_runner_matches_enumerate_subgraphs(self, er_graph):
        """run_query_solo (the service's oracle baseline) agrees with the
        public API, so served == solo == enumerate_subgraphs."""
        for name in ("triangle", "q1", "q2", "q3"):
            assert run_query_solo(er_graph, req(name)).count == \
                enumerate_subgraphs(er_graph, name, num_machines=2,
                                    workers_per_machine=2).count

    def test_unknown_dataset_raises(self, service):
        with pytest.raises(KeyError, match="unknown dataset"):
            service.submit(req(dataset="nope"))

    def test_submit_after_stop_raises(self, er_graph):
        svc = QueryService(datasets={"er": er_graph}, num_workers=1).start()
        svc.stop()
        with pytest.raises(RuntimeError):
            svc.submit(req())

    def test_stats_accounting(self, service):
        handles = [service.submit(req()) for _ in range(4)]
        for h in handles:
            h.result(timeout=60)
        stats = service.stats()
        assert stats.submitted == 4
        assert stats.completed == 4
        assert stats.delivery_violations == 0
        assert stats.reserved_bytes == 0.0


class TestPlanCache:
    def test_isomorphic_requests_hit(self, service, er_graph):
        from repro.query import get_query

        base = get_query("q2")
        relabelled = base.relabel({0: 3, 1: 1, 2: 0, 3: 2})
        o1 = service.submit(req(base)).result(timeout=60)
        o2 = service.submit(req(relabelled)).result(timeout=60)
        assert o1.canonical_key == o2.canonical_key
        assert o2.plan_cache_hit
        assert o1.count == o2.count
        assert service.plan_cache.stats.hits >= 1

    def test_cache_shared_across_workers(self, service):
        handles = [service.submit(req("q1")) for _ in range(6)]
        for h in handles:
            assert h.result(timeout=60).status is QueryStatus.COMPLETED
        stats = service.plan_cache.stats
        assert stats.hits > 0
        assert stats.hits + stats.misses >= 6

    def test_lru_eviction(self):
        cache = PlanCache(capacity=2)
        for i, key in enumerate(("a", "b", "c")):
            cache.put((key,), i)
        assert cache.get(("a",)) is None
        assert cache.get(("c",)) == 2
        assert cache.stats.evictions == 1


class TestDeadlinesAndCancellation:
    def test_queued_deadline_expiry_releases_everything(self, er_graph):
        """Deadline-exceeded queries are cancelled and their reservation
        never leaks: the ledger drains to zero."""
        svc = QueryService(datasets={"er": er_graph}, num_workers=1).start()
        try:
            blockers = [svc.submit(req("q3")) for _ in range(3)]
            doomed = svc.submit(req("q3", deadline_s=0.001))
            outcome = doomed.result(timeout=60)
            assert outcome.status is QueryStatus.CANCELLED
            assert "deadline" in outcome.error
            for h in blockers:
                assert h.result(timeout=60).status is QueryStatus.COMPLETED
        finally:
            svc.stop()
        assert svc.stats().reserved_bytes == 0.0
        assert svc.admission.stats.underflows == 0

    def test_client_cancel_queued(self, er_graph):
        svc = QueryService(datasets={"er": er_graph}, num_workers=1).start()
        try:
            blocker = svc.submit(req("q3"))
            victim = svc.submit(req("q3"))
            victim.cancel("changed my mind")
            outcome = victim.result(timeout=60)
            assert outcome.status is QueryStatus.CANCELLED
            assert outcome.error == "changed my mind"
            assert blocker.result(timeout=60).status is QueryStatus.COMPLETED
        finally:
            svc.stop()

    def test_cancel_token_deadline(self):
        token = CancelToken(deadline=time.monotonic() - 1.0)
        with pytest.raises(QueryCancelledError, match="deadline"):
            token.check()

    def test_running_query_sees_cancellation(self, er_graph):
        """The engine's scheduler polls the token: a mid-run cancel
        unwinds as CANCELLED, not as a wrong result."""
        svc = QueryService(datasets={"er": er_graph}, num_workers=1).start()
        try:
            handle = svc.submit(req("q3"))
            # cancel as soon as it is actually running
            for _ in range(2000):
                if handle.status is QueryStatus.RUNNING:
                    break
                time.sleep(0.001)
            handle.cancel("mid-run cancel")
            outcome = handle.result(timeout=60)
            # small queries may legitimately win the race and complete
            assert outcome.status in (QueryStatus.CANCELLED,
                                      QueryStatus.COMPLETED)
        finally:
            svc.stop()
        assert svc.stats().reserved_bytes == 0.0


class TestAdmissionControl:
    def test_oversized_request_rejected(self, er_graph):
        svc = QueryService(datasets={"er": er_graph}, num_workers=1,
                           memory_budget_bytes=1.0).start()
        try:
            outcome = svc.submit(req()).result(timeout=60)
            assert outcome.status is QueryStatus.REJECTED
            assert "budget" in outcome.error
        finally:
            svc.stop()

    def test_budget_serialises_but_completes(self, er_graph):
        """A budget that fits one query at a time forces serial dispatch;
        everything still completes and the peak stays within budget."""
        request = req("triangle")
        estimate = estimate_query_bytes(
            3, er_graph, EngineConfig(), request.num_machines)
        svc = QueryService(datasets={"er": er_graph}, num_workers=2,
                           memory_budget_bytes=estimate * 1.5).start()
        try:
            handles = [svc.submit(req("triangle")) for _ in range(4)]
            for h in handles:
                assert h.result(timeout=60).status is QueryStatus.COMPLETED
        finally:
            svc.stop()
        stats = svc.admission.stats
        assert stats.peak_reserved_bytes <= estimate * 1.5
        assert svc.stats().reserved_bytes == 0.0

    def test_controller_ledger(self):
        ctl = AdmissionController(100.0)
        assert ctl.try_reserve(60.0)
        assert not ctl.try_reserve(60.0)
        assert ctl.fits_now(40.0)
        ctl.release(60.0)
        assert ctl.reserved_bytes == 0.0
        ctl.release(1.0)  # double release is observable
        assert ctl.stats.underflows == 1

    def test_estimate_scales_with_pattern_and_machines(self, er_graph):
        cfg = EngineConfig()
        small = estimate_query_bytes(3, er_graph, cfg, 2)
        assert estimate_query_bytes(5, er_graph, cfg, 2) > small
        assert estimate_query_bytes(3, er_graph, cfg, 4) > small


class TestFaultTolerance:
    def test_crashed_query_completes_exactly_once(self, er_graph):
        """A worker killed mid-run is detected; the query retries on a
        fresh worker and completes once — never lost, never duplicated."""
        injector = FaultInjector()
        svc = QueryService(datasets={"er": er_graph}, num_workers=2,
                           injector=injector, backoff_base_s=0.01).start()
        try:
            victim = req("q2")
            injector.crash(victim.seq, attempt=1, after_polls=2)
            others = [svc.submit(req("q2")) for _ in range(2)]
            handle = svc.submit(victim)
            outcome = handle.result(timeout=60)
            assert outcome.status is QueryStatus.COMPLETED
            assert outcome.attempts == 2
            assert outcome.count == run_query_solo(er_graph, victim).count
            for h in others:
                assert h.result(timeout=60).status is QueryStatus.COMPLETED
        finally:
            svc.stop()
        stats = svc.stats()
        assert stats.worker_crashes == 1
        assert stats.retries == 1
        assert stats.delivery_violations == 0
        assert handle.delivery_violations == 0
        assert stats.reserved_bytes == 0.0
        assert injector.injected == 1

    def test_repeated_crashes_exhaust_retries(self, er_graph):
        injector = FaultInjector()
        svc = QueryService(datasets={"er": er_graph}, num_workers=1,
                           injector=injector, max_retries=1,
                           backoff_base_s=0.01).start()
        try:
            victim = req("q1")
            injector.crash(victim.seq, attempt=1, after_polls=2)
            injector.crash(victim.seq, attempt=2, after_polls=2)
            outcome = svc.submit(victim).result(timeout=60)
            assert outcome.status is QueryStatus.FAILED
            assert "crashed" in outcome.error
            assert outcome.attempts == 2
        finally:
            svc.stop()
        assert svc.stats().worker_crashes == 2
        assert svc.stats().reserved_bytes == 0.0

    def test_pool_survives_crash(self, er_graph):
        """After a crash the pool is back to full strength."""
        injector = FaultInjector()
        svc = QueryService(datasets={"er": er_graph}, num_workers=2,
                           injector=injector, backoff_base_s=0.01).start()
        try:
            victim = req()
            injector.crash(victim.seq, attempt=1, after_polls=2)
            svc.submit(victim).result(timeout=60)
            handles = [svc.submit(req()) for _ in range(4)]
            for h in handles:
                assert h.result(timeout=60).status is QueryStatus.COMPLETED
            assert sum(w.is_alive() for w in svc._workers) == 2
        finally:
            svc.stop()


class TestStreaming:
    def test_chunks_reassemble_full_result(self, service, er_graph):
        direct = enumerate_subgraphs(er_graph, "triangle", num_machines=2,
                                     collect=True)
        handle = service.submit(req("triangle", stream=True, chunk_size=4))
        rows = []
        for chunk in handle.chunks(timeout=60):
            assert len(chunk.rows) <= 4
            rows.extend(chunk.rows)
        outcome = handle.result(timeout=60)
        assert outcome.status is QueryStatus.COMPLETED
        assert len(rows) == outcome.count
        assert sorted(rows) == sorted(direct.matches)

    def test_collect_without_stream_returns_matches(self, service, er_graph):
        direct = enumerate_subgraphs(er_graph, "q1", num_machines=2,
                                     collect=True)
        outcome = service.submit(req("q1", collect=True)).result(timeout=60)
        assert sorted(outcome.result.matches) == sorted(direct.matches)

    def test_relabelled_pattern_matches_remapped(self, service, er_graph):
        """Matches come back in the *request's* vertex order even though
        the cached plan ran the canonical form."""
        from repro.query import get_query

        base = get_query("triangle")
        relabelled = base.relabel({0: 2, 1: 0, 2: 1})
        direct = enumerate_subgraphs(er_graph, relabelled, num_machines=2,
                                     collect=True)
        outcome = service.submit(req(relabelled, collect=True)) \
            .result(timeout=60)
        assert sorted(outcome.result.matches) == sorted(direct.matches)


class TestFairScheduling:
    def test_priority_dispatch_order(self):
        q = MultiQueue()
        entries = {}
        for i, prio in enumerate([Priority.LOW, Priority.NORMAL,
                                  Priority.HIGH]):
            r = QueryRequest(pattern="triangle", dataset="d", priority=prio)
            e = QueueEntry(QueryHandle(r), 0.0, 0.0, float("inf"))
            q.push(e)
            entries[prio] = e
        assert q.pop_eligible(1.0, lambda e: True) is entries[Priority.HIGH]

    def test_wrr_prevents_starvation(self):
        """Under saturation LOW still drains: 4:2:1 credits."""
        q = MultiQueue()
        for _ in range(12):
            for prio in (Priority.HIGH, Priority.LOW):
                r = QueryRequest(pattern="t", dataset="d", priority=prio)
                q.push(QueueEntry(QueryHandle(r), 0.0, 0.0, float("inf")))
        first8 = [q.pop_eligible(1.0, lambda e: True).handle.request.priority
                  for _ in range(8)]
        assert Priority.LOW in first8

    def test_edf_within_priority(self):
        q = MultiQueue()
        deadlines = [5.0, 1.0, 3.0]
        for d in deadlines:
            r = QueryRequest(pattern="t", dataset="d")
            q.push(QueueEntry(QueryHandle(r), 0.0, 0.0, d))
        popped = [q.pop_eligible(0.0, lambda e: True).abs_deadline
                  for _ in range(3)]
        assert popped == sorted(deadlines)

    def test_backoff_gate(self):
        q = MultiQueue()
        r = QueryRequest(pattern="t", dataset="d")
        e = QueueEntry(QueryHandle(r), 0.0, 0.0, float("inf"))
        e.not_before = 10.0
        q.push(e)
        assert q.pop_eligible(5.0, lambda e: True) is None
        assert q.pop_eligible(10.0, lambda e: True) is e

    def test_tenant_cap_enforced(self, er_graph):
        svc = QueryService(datasets={"er": er_graph}, num_workers=2,
                           tenant_max_inflight=1).start()
        try:
            seen = []
            lock = threading.Lock()
            orig = svc._run_entry

            def spy(worker, entry):
                with lock:
                    seen.append(len([e for e in svc._inflight.values()
                                     if e.handle.request.tenant == "a"]))
                return orig(worker, entry)

            svc._run_entry = spy
            handles = [svc.submit(req(tenant="a")) for _ in range(4)]
            for h in handles:
                assert h.result(timeout=60).status is QueryStatus.COMPLETED
            assert max(seen) <= 1
        finally:
            svc.stop()


class TestServingOracles:
    def test_oracles_pass_on_mixed_workload(self, er_graph):
        injector = FaultInjector()
        svc = QueryService(datasets={"er": er_graph}, num_workers=2,
                           injector=injector, backoff_base_s=0.01).start()
        requests = [req(p) for p in ("triangle", "q1", "q2", "triangle",
                                     "q1", "q2")]
        injector.crash(requests[0].seq, attempt=1, after_polls=2)
        try:
            handles = [svc.submit(r) for r in requests]
            outcomes = [h.result(timeout=60) for h in handles]
        finally:
            svc.stop()
        failures = check_service_run(svc, requests, outcomes, er_graph,
                                     injected_crashes=1)
        assert failures == []

    def test_driver_verify_and_report_oracles(self, er_graph):
        spec = WorkloadSpec(num_queries=6, dataset="er",
                            patterns=("triangle", "q1"), num_machines=2,
                            workers_per_machine=2, crashes=1,
                            relabel_fraction=0.5)
        driver = LoadDriver(er_graph, spec, num_workers=2)
        report = driver.run(verify=True)
        assert report.verified is True
        assert report.counts_by_status == {"completed": 6}
        assert check_driver_report(report) == []


class TestStatsPrimitives:
    def test_percentile(self):
        vals = [1.0, 2.0, 3.0, 4.0]
        assert percentile(vals, 0) == 1.0
        assert percentile(vals, 100) == 4.0
        assert percentile(vals, 50) == 2.5
        assert percentile([], 50) == 0.0

    def test_percentile_edge_cases(self):
        # single sample: every q returns it
        assert percentile([7.0], 0) == 7.0
        assert percentile([7.0], 100) == 7.0
        # two samples: linear interpolation between them
        assert percentile([1.0, 3.0], 0) == 1.0
        assert percentile([1.0, 3.0], 50) == 2.0
        assert percentile([1.0, 3.0], 100) == 3.0
        assert percentile([1.0, 3.0], 25) == pytest.approx(1.5)

    def test_percentile_rejects_out_of_range_q(self):
        with pytest.raises(ValueError, match="0..100"):
            percentile([1.0], -1)
        with pytest.raises(ValueError, match="0..100"):
            percentile([1.0], 101)

    def test_percentile_rejects_unsorted_input(self):
        with pytest.raises(ValueError, match="ascending"):
            percentile([3.0, 1.0, 2.0], 50)

    def test_latency_recorder(self):
        rec = LatencyRecorder()
        for v in (0.1, 0.2, 0.3):
            rec.add(v)
        snap = rec.snapshot()
        assert snap["count"] == 3
        assert snap["p50_s"] == pytest.approx(0.2)
        assert snap["max_s"] == pytest.approx(0.3)

    def test_latency_recorder_snapshot_schema_pinned(self):
        """Regression: BENCH_serving.json consumers read exactly these
        keys; migrating onto the shared histogram must not change them."""
        rec = LatencyRecorder()
        rec.add(0.5)
        assert set(rec.snapshot()) == {"count", "mean_s", "p50_s", "p95_s",
                                       "p99_s", "max_s"}
        empty = LatencyRecorder().snapshot()
        assert empty == {"count": 0, "mean_s": 0.0, "p50_s": 0.0,
                         "p95_s": 0.0, "p99_s": 0.0, "max_s": 0.0}

    def test_latency_recorder_wraparound_deterministic(self):
        """Round-robin overwrite: after capacity wraps, the retained
        window is a pure function of the stream — two identical streams
        retain identical samples."""
        def run() -> dict:
            rec = LatencyRecorder(max_samples=8)
            for i in range(20):
                rec.add(float(i))
            return rec.snapshot()

        a, b = run(), run()
        assert a == b
        assert a["count"] == 20          # count tracks the full stream
        assert a["max_s"] == 19.0        # newest sample retained
        # sample 8 onward landed in slot count % 8 (count after inc), so
        # the window holds exactly the last 8 values 12..19
        rec = LatencyRecorder(max_samples=8)
        for i in range(20):
            rec.add(float(i))
        assert sorted(rec._child.samples) == [float(v)
                                              for v in range(12, 20)]

    def test_latency_recorder_over_shared_histogram(self):
        """The serving tier's recorders feed the same samples to the
        snapshot dict and the Prometheus exposition."""
        from repro.obs import MetricsRegistry

        reg = MetricsRegistry()
        hist = reg.histogram("lat_seconds", "latency", time_base="wall",
                             reservoir=16)
        rec = LatencyRecorder(histogram=hist)
        for v in (0.1, 0.2, 0.4):
            rec.add(v)
        assert rec.count == 3 == hist.count
        assert rec.snapshot()["p50_s"] == pytest.approx(0.2)
        assert hist.percentile(50) == pytest.approx(0.2)
        assert "repro_lat_seconds_count 3" in reg.expose()

    def test_latency_recorder_rejects_unusable_histogram(self):
        from repro.obs import Histogram

        with pytest.raises(ValueError, match="reservoir"):
            LatencyRecorder(histogram=Histogram("h"))
        with pytest.raises(ValueError, match="labelled"):
            LatencyRecorder(histogram=Histogram("h", labelnames=("k",),
                                                reservoir=4))


class TestServiceMetrics:
    def test_counters_match_service_stats(self, er_graph):
        from repro.obs import MetricsRegistry, check_exposition

        reg = MetricsRegistry()
        svc = QueryService(datasets={"er": er_graph}, num_workers=2,
                           metrics=reg).start()
        try:
            handles = [svc.submit(req(p, tenant=t))
                       for p, t in (("triangle", "a"), ("q1", "a"),
                                    ("q1", "b"), ("q2", "b"))]
            for h in handles:
                assert h.result(timeout=60).status is QueryStatus.COMPLETED
        finally:
            svc.stop()
        stats = svc.stats()
        sub = reg.get("repro_serve_submitted_total")
        assert sub.get("a") + sub.get("b") == stats.submitted
        comp = reg.get("repro_serve_completed_total")
        assert comp.get("a") + comp.get("b") == stats.completed
        assert reg.get("repro_serve_requests_total").get("completed") == \
            stats.completed
        pc = reg.get("repro_serve_plan_cache_total")
        assert pc.get("hit") == svc.plan_cache.stats.hits
        assert pc.get("miss") == svc.plan_cache.stats.misses
        adm = reg.get("repro_serve_admission_total")
        assert adm.get("accept", "fits") == stats.submitted
        # latency histogram carries the same samples as the snapshot dict
        lat = reg.get("repro_serve_latency_seconds")
        assert lat.count == stats.completed
        assert svc._latency.snapshot()["p50_s"] == \
            pytest.approx(lat.percentile(50))
        # gauges drain with the service
        assert reg.get("repro_serve_inflight").value == 0
        assert reg.get("repro_serve_reserved_bytes").value == 0
        assert check_exposition(reg.expose()) == []

    def test_reject_and_crash_counters(self, er_graph):
        from repro.obs import MetricsRegistry

        reg = MetricsRegistry()
        injector = FaultInjector()
        svc = QueryService(datasets={"er": er_graph}, num_workers=1,
                           memory_budget_bytes=1.0, injector=injector,
                           backoff_base_s=0.01, metrics=reg).start()
        try:
            outcome = svc.submit(req()).result(timeout=60)
            assert outcome.status is QueryStatus.REJECTED
        finally:
            svc.stop()
        assert reg.get("repro_serve_admission_total") \
            .get("reject", "memory_bound") == 1
        assert reg.get("repro_serve_requests_total").get("rejected") == 1

        reg2 = MetricsRegistry()
        injector = FaultInjector()
        svc = QueryService(datasets={"er": er_graph}, num_workers=2,
                           injector=injector, backoff_base_s=0.01,
                           metrics=reg2).start()
        try:
            victim = req("q2")
            injector.crash(victim.seq, attempt=1, after_polls=2)
            outcome = svc.submit(victim).result(timeout=60)
            assert outcome.status is QueryStatus.COMPLETED
        finally:
            svc.stop()
        assert reg2.get("repro_serve_worker_crashes_total").get("thread") == \
            svc.stats().worker_crashes == 1
        assert reg2.get("repro_serve_retries_total").get("thread") == 1

    def test_driver_run_with_metrics_verifies_bit_identical(self, er_graph):
        """LoadDriver integration: a metrics+flight run still passes the
        solo-run bit-identity oracle."""
        from repro.obs import FlightRecorder, MetricsRegistry

        reg = MetricsRegistry()
        flight = FlightRecorder()
        spec = WorkloadSpec(num_queries=6, dataset="er",
                            patterns=("triangle", "q1"), num_machines=2,
                            workers_per_machine=2, relabel_fraction=0.5)
        driver = LoadDriver(er_graph, spec, num_workers=2, metrics=reg,
                            flight=flight)
        report = driver.run(verify=True)
        assert report.verified is True
        assert reg.get("repro_serve_requests_total").get("completed") == 6
        assert flight.stats()["retained"] == 6


class TestWrrCreditCycle:
    """Regression tests for the credit-cycle fixes: replenish keys on
    *non-empty* classes and credits clamp at zero."""

    @staticmethod
    def _backlog(q, counts):
        for prio, n in counts.items():
            for _ in range(n):
                r = QueryRequest(pattern="t", dataset="d", priority=prio)
                q.push(QueueEntry(QueryHandle(r), 0.0, 0.0, float("inf")))

    def test_weighted_ratio_under_full_backlog(self):
        """All classes saturated: pops follow the 4:2:1 weights exactly
        over whole credit cycles (7 pops per cycle)."""
        q = MultiQueue()
        self._backlog(q, {Priority.HIGH: 90, Priority.NORMAL: 50,
                          Priority.LOW: 30})
        popped = [q.pop_eligible(1.0, lambda e: True).handle.request.priority
                  for _ in range(70)]  # 10 full cycles
        counts = {p: popped.count(p) for p in Priority}
        assert counts == {Priority.HIGH: 40, Priority.NORMAL: 20,
                          Priority.LOW: 10}

    def test_idle_credited_class_does_not_stall_the_cycle(self):
        """HIGH holds unspent credits but is empty; NORMAL and LOW must
        keep draining at their 2:1 weights (the starvation bug: the old
        replenish waited for *every* class to exhaust, so an idle HIGH
        froze the cycle and credits went negative)."""
        q = MultiQueue()
        self._backlog(q, {Priority.NORMAL: 40, Priority.LOW: 40})
        popped = []
        for _ in range(60):
            e = q.pop_eligible(1.0, lambda e: True)
            assert e is not None, "cycle stalled with work queued"
            popped.append(e.handle.request.priority)
            assert all(c >= 0 for c in q._credits.values()), \
                "credits must never go negative"
        counts = {p: popped.count(p) for p in Priority}
        assert counts[Priority.NORMAL] == 40
        assert counts[Priority.LOW] == 20

    def test_exhausted_class_pops_do_not_sink_credits(self):
        """Popping from an exhausted class (fallback when credited
        classes have nothing dispatchable) clamps at zero instead of
        going negative and collapsing the weighted ratio."""
        q = MultiQueue()
        self._backlog(q, {Priority.LOW: 20})
        for _ in range(20):
            assert q.pop_eligible(1.0, lambda e: True) is not None
            assert q._credits[Priority.LOW] >= 0


class TestAdmissionEstimateBound:
    def test_estimate_upper_bounds_measured_peak(self, er_graph):
        """Cross-check against the Theorem-5.4 memory oracle: the
        admission estimate (|V_q| tuple width) must still upper-bound
        the engine's measured per-machine peak for every benchmark
        pattern — the old ``deg``-width queue term was an over-charge on
        high-degree graphs, not extra safety."""
        from repro.query import get_query

        cfg = EngineConfig()
        for name in ("triangle", "q1", "q2", "q4", "q5"):
            request = req(name, config=cfg)
            outcome = run_query_solo(er_graph, request)
            assert outcome.status is QueryStatus.COMPLETED
            pattern = get_query(name)
            estimate = estimate_query_bytes(
                pattern.num_vertices, er_graph, cfg, request.num_machines)
            per_machine = estimate / request.num_machines
            peak = outcome.result.report.peak_memory_bytes
            assert per_machine >= peak, (
                f"{name}: estimate {per_machine:.0f}B/machine below "
                f"measured peak {peak:.0f}B")


class TestStatsConcurrency:
    """Torn-snapshot regressions: stats reads race their writers."""

    def test_plan_cache_stats_consistent_under_hammer(self):
        cache = PlanCache(capacity=8)
        stop = threading.Event()

        def writer(tid):
            i = 0
            while not stop.is_set():
                key = ("k", tid, i % 12)
                if cache.get(key) is None:
                    cache.put(key, plan=object())
                i += 1

        threads = [threading.Thread(target=writer, args=(t,))
                   for t in range(4)]
        for t in threads:
            t.start()
        try:
            for _ in range(300):
                snap = cache.stats.as_dict()
                # the snapshot is taken under the stats lock, so the
                # rate must equal hits/(hits+misses) *of the same snap*
                # — a torn read once let them drift apart
                total = snap["hits"] + snap["misses"]
                if total:
                    assert snap["hit_rate"] == snap["hits"] / total
                assert 0.0 <= cache.stats.hit_rate <= 1.0
        finally:
            stop.set()
            for t in threads:
                t.join()
        final = cache.stats.as_dict()
        # every fresh insert adds an entry, every eviction removes one
        assert final["inserts"] - final["evictions"] == len(cache)

    def test_plan_cache_overwrites_counted_separately(self):
        cache = PlanCache(capacity=2)
        cache.put(("a",), plan=object())
        cache.put(("a",), plan=object())  # overwrite, not an insert
        snap = cache.stats.as_dict()
        assert snap["inserts"] == 1
        assert snap["overwrites"] == 1
        cache.put(("b",), plan=object())
        cache.put(("c",), plan=object())  # evicts LRU ("a")
        snap = cache.stats.as_dict()
        assert snap["inserts"] == 3
        assert snap["evictions"] == 1

    def test_admission_snapshot_consistent_under_hammer(self):
        ctrl = AdmissionController(budget_bytes=1e9)
        stop = threading.Event()

        def churn():
            while not stop.is_set():
                if ctrl.try_reserve(1000.0):
                    ctrl.release(1000.0)

        threads = [threading.Thread(target=churn) for _ in range(4)]
        for t in threads:
            t.start()
        try:
            for _ in range(300):
                snap = ctrl.stats_snapshot()
                assert snap["underflows"] == 0
                assert snap["releases"] <= snap["admitted"]
                assert snap["reserved_bytes"] >= 0.0
        finally:
            stop.set()
            for t in threads:
                t.join()
        assert ctrl.stats_snapshot()["admitted"] == \
            ctrl.stats_snapshot()["releases"]
