"""Property-based tests (hypothesis) for core invariants.

Strategy: generate random small graphs and exercise the full pipeline —
all engines must agree with the brute-force reference; symmetry breaking
must keep exactly one embedding per instance; the LRBU cache must honour
its sealing/overflow contract under arbitrary operation sequences.

Strategies are shared with the conformance harness
(:mod:`repro.testing.strategies`), so the property tests and the fuzzer
explore structurally identical inputs — including labelled graphs and the
degenerate shapes (isolated vertices, multi-component graphs) real
datasets never contain.  Example counts follow the hypothesis profile
selected in ``conftest.py``: 25 by default, 200 under ``--slow``.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import (BenuEngine, BigJoinEngine, RadsEngine,
                             SeedEngine, count_matches,
                             count_ordered_embeddings)
from repro.cluster import Cluster
from repro.core import HugeEngine, LRBUCache
from repro.cluster import CostModel
from repro.query import (automorphism_count, get_query, symmetry_break)
from repro.testing.strategies import (degenerate_graphs, graphs,
                                      labelled_graphs, labelled_patterns,
                                      patterns)

# -- properties ------------------------------------------------------------------


class TestEngineAgreement:
    @given(g=graphs(), seed=st.integers(min_value=0, max_value=3))
    def test_huge_matches_reference(self, g, seed):
        q = get_query("triangle")
        cl = Cluster(g, num_machines=3, workers_per_machine=2, seed=seed)
        assert HugeEngine(cl).run(q).count == count_matches(g, q)

    @given(g=graphs(max_vertices=12))
    def test_all_engines_agree_on_square(self, g):
        q = get_query("q1")
        cl = Cluster(g, num_machines=2, workers_per_machine=2, seed=1)
        expect = count_matches(g, q)
        assert HugeEngine(cl).run(q).count == expect
        assert SeedEngine(cl).run(q).count == expect
        assert BigJoinEngine(cl).run(q).count == expect
        assert BenuEngine(cl).run(q).count == expect
        assert RadsEngine(cl).run(q).count == expect

    @given(g=graphs(max_vertices=10), q=patterns())
    def test_huge_on_random_patterns(self, g, q):
        cl = Cluster(g, num_machines=2, workers_per_machine=2, seed=0)
        assert HugeEngine(cl).run(q).count == count_matches(g, q)

    @given(g=degenerate_graphs(), q=patterns())
    def test_huge_on_degenerate_graphs(self, g, q):
        """Isolated vertices and multi-component graphs: counts (often 0)
        still agree with the reference."""
        cl = Cluster(g, num_machines=2, workers_per_machine=2, seed=0)
        assert HugeEngine(cl).run(q).count == count_matches(g, q)

    @given(g=degenerate_graphs(max_vertices=10))
    def test_baselines_on_degenerate_graphs(self, g):
        q = get_query("triangle")
        cl = Cluster(g, num_machines=2, workers_per_machine=2, seed=1)
        expect = count_matches(g, q)
        assert BigJoinEngine(cl).run(q).count == expect
        assert BenuEngine(cl).run(q).count == expect

    @given(gl=labelled_graphs(max_vertices=10), q=labelled_patterns())
    def test_huge_on_labelled_graphs(self, gl, q):
        g, labels = gl
        cl = Cluster(g, num_machines=2, workers_per_machine=2, seed=0,
                     labels=labels)
        assert HugeEngine(cl).run(q).count == count_matches(
            g, q, labels=labels)

    @pytest.mark.slow
    @given(g=graphs(max_vertices=11), q=patterns())
    @settings(max_examples=100)
    def test_all_engines_agree_on_random_patterns(self, g, q):
        """Soak: the full engine set on arbitrary connected patterns."""
        cl = Cluster(g, num_machines=3, workers_per_machine=2, seed=2)
        expect = count_matches(g, q)
        assert HugeEngine(cl).run(q).count == expect
        assert SeedEngine(cl).run(q).count == expect
        assert BigJoinEngine(cl).run(q).count == expect
        assert BenuEngine(cl).run(q).count == expect
        assert RadsEngine(cl).run(q).count == expect


class TestSymmetryProperties:
    @given(g=graphs(max_vertices=10), q=patterns())
    def test_aut_divides_ordered_count(self, g, q):
        ordered = count_ordered_embeddings(g, q)
        assert ordered % automorphism_count(q) == 0

    @given(g=graphs(max_vertices=10), q=patterns())
    def test_symmetry_break_keeps_exactly_one(self, g, q):
        ordered = count_ordered_embeddings(g, q)
        matched = count_matches(g, q)
        assert matched * automorphism_count(q) == ordered

    @given(gl=labelled_graphs(max_vertices=10), q=labelled_patterns())
    def test_labelled_symmetry_break_keeps_exactly_one(self, gl, q):
        g, labels = gl
        ordered = count_ordered_embeddings(g, q, labels=labels)
        matched = count_matches(g, q, labels=labels)
        assert matched * automorphism_count(q) == ordered

    @given(q=patterns())
    @settings(max_examples=50)
    def test_conditions_reference_valid_vertices(self, q):
        for (u, v) in symmetry_break(q):
            assert 0 <= u < q.num_vertices
            assert 0 <= v < q.num_vertices
            assert u != v


class TestCacheProperties:
    @given(ops=st.lists(
        st.tuples(st.sampled_from(["insert", "seal", "release"]),
                  st.integers(min_value=0, max_value=20)),
        max_size=120), capacity=st.integers(min_value=2, max_value=30))
    @settings(max_examples=100)
    def test_lrbu_invariants_under_random_ops(self, ops, capacity):
        cache = LRBUCache(capacity, CostModel())
        sealed_since_release: set[int] = set()
        for op, vid in ops:
            if op == "insert":
                cache.insert(vid, np.asarray([vid], dtype=np.int64))
                sealed_since_release.add(vid)  # insert pins the entry
                # at insert time, overflow is bounded by the footprint of
                # the pinned (sealed) entries — the §4.4 invariant
                if cache.size_ids > capacity:
                    pinned_ids = 2 * len(sealed_since_release)
                    assert cache.size_ids - capacity <= pinned_ids
            elif op == "seal":
                cache.seal(vid)
                if cache.contains(vid):
                    sealed_since_release.add(vid)
            else:
                cache.release()
                sealed_since_release.clear()
            # sealed entries are never evicted
            for v in sealed_since_release:
                assert cache.contains(v)

    @given(vids=st.lists(st.integers(min_value=0, max_value=1000),
                         min_size=1, max_size=200))
    @settings(max_examples=50)
    def test_lrbu_never_loses_unsealed_data_silently(self, vids):
        """whatever is reported contained must be retrievable"""
        cache = LRBUCache(16, CostModel())
        for v in vids:
            cache.insert(v, np.asarray([v], dtype=np.int64))
            if cache.contains(v):
                assert cache.get(v)[0] == v


class TestGraphProperties:
    @given(g=graphs())
    @settings(max_examples=50)
    def test_degree_sum(self, g):
        assert int(g.degrees().sum()) == 2 * g.num_edges

    @given(g=graphs())
    @settings(max_examples=50)
    def test_neighbours_symmetric(self, g):
        for u, v in g.edges():
            assert g.has_edge(v, u)

    @given(g=degenerate_graphs())
    @settings(max_examples=50)
    def test_degenerate_isolated_vertices_have_no_neighbours(self, g):
        degs = g.degrees()
        assert (degs == 0).any()  # the strategy guarantees isolation
        for v in g.vertices():
            assert len(g.neighbours(v)) == g.degree(v)

    @given(g=graphs(), k=st.integers(min_value=1, max_value=5))
    @settings(max_examples=30)
    def test_partition_is_a_partition(self, g, k):
        from repro.graph import PartitionedGraph

        pg = PartitionedGraph(g, k, seed=0)
        seen = []
        for p in range(k):
            seen.extend(int(v) for v in pg.local_vertices(p))
        assert sorted(seen) == list(g.vertices())

    @given(g=degenerate_graphs(), k=st.integers(min_value=1, max_value=4))
    @settings(max_examples=30)
    def test_partition_covers_isolated_vertices(self, g, k):
        from repro.graph import PartitionedGraph

        pg = PartitionedGraph(g, k, seed=1)
        seen = []
        for p in range(k):
            seen.extend(int(v) for v in pg.local_vertices(p))
        assert sorted(seen) == list(g.vertices())
