"""Property-based tests (hypothesis) for core invariants.

Strategy: generate random small graphs and exercise the full pipeline —
all engines must agree with the brute-force reference; symmetry breaking
must keep exactly one embedding per instance; the LRBU cache must honour
its sealing/overflow contract under arbitrary operation sequences.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines import (BenuEngine, BigJoinEngine, RadsEngine,
                             SeedEngine, count_matches,
                             count_ordered_embeddings)
from repro.cluster import Cluster
from repro.core import HugeEngine, LRBUCache
from repro.cluster import CostModel
from repro.graph import Graph
from repro.query import (QueryGraph, automorphism_count, get_query,
                         symmetry_break)

# -- strategies ----------------------------------------------------------------


@st.composite
def graphs(draw, max_vertices=14):
    n = draw(st.integers(min_value=4, max_value=max_vertices))
    possible = [(u, v) for u in range(n) for v in range(u + 1, n)]
    edges = draw(st.lists(st.sampled_from(possible), min_size=3,
                          max_size=len(possible), unique=True))
    return Graph.from_edges(edges, num_vertices=n)


@st.composite
def patterns(draw):
    """small connected patterns"""
    n = draw(st.integers(min_value=3, max_value=4))
    possible = [(u, v) for u in range(n) for v in range(u + 1, n)]
    # start from a random spanning path to guarantee connectivity
    edges = {(i, i + 1) for i in range(n - 1)}
    extra = draw(st.lists(st.sampled_from(possible), max_size=4))
    edges.update(extra)
    return QueryGraph(n, edges)


SLOW = settings(max_examples=25, deadline=None,
                suppress_health_check=[HealthCheck.too_slow])


# -- properties ------------------------------------------------------------------


class TestEngineAgreement:
    @SLOW
    @given(g=graphs(), seed=st.integers(min_value=0, max_value=3))
    def test_huge_matches_reference(self, g, seed):
        q = get_query("triangle")
        cl = Cluster(g, num_machines=3, workers_per_machine=2, seed=seed)
        assert HugeEngine(cl).run(q).count == count_matches(g, q)

    @SLOW
    @given(g=graphs(max_vertices=12))
    def test_all_engines_agree_on_square(self, g):
        q = get_query("q1")
        cl = Cluster(g, num_machines=2, workers_per_machine=2, seed=1)
        expect = count_matches(g, q)
        assert HugeEngine(cl).run(q).count == expect
        assert SeedEngine(cl).run(q).count == expect
        assert BigJoinEngine(cl).run(q).count == expect
        assert BenuEngine(cl).run(q).count == expect
        assert RadsEngine(cl).run(q).count == expect

    @SLOW
    @given(g=graphs(max_vertices=10), q=patterns())
    def test_huge_on_random_patterns(self, g, q):
        cl = Cluster(g, num_machines=2, workers_per_machine=2, seed=0)
        assert HugeEngine(cl).run(q).count == count_matches(g, q)


class TestSymmetryProperties:
    @SLOW
    @given(g=graphs(max_vertices=10), q=patterns())
    def test_aut_divides_ordered_count(self, g, q):
        ordered = count_ordered_embeddings(g, q)
        assert ordered % automorphism_count(q) == 0

    @SLOW
    @given(g=graphs(max_vertices=10), q=patterns())
    def test_symmetry_break_keeps_exactly_one(self, g, q):
        ordered = count_ordered_embeddings(g, q)
        matched = count_matches(g, q)
        assert matched * automorphism_count(q) == ordered

    @given(q=patterns())
    @settings(max_examples=50, deadline=None)
    def test_conditions_reference_valid_vertices(self, q):
        for (u, v) in symmetry_break(q):
            assert 0 <= u < q.num_vertices
            assert 0 <= v < q.num_vertices
            assert u != v


class TestCacheProperties:
    @given(ops=st.lists(
        st.tuples(st.sampled_from(["insert", "seal", "release"]),
                  st.integers(min_value=0, max_value=20)),
        max_size=120), capacity=st.integers(min_value=2, max_value=30))
    @settings(max_examples=100, deadline=None)
    def test_lrbu_invariants_under_random_ops(self, ops, capacity):
        cache = LRBUCache(capacity, CostModel())
        sealed_since_release: set[int] = set()
        for op, vid in ops:
            if op == "insert":
                cache.insert(vid, np.asarray([vid], dtype=np.int64))
                sealed_since_release.add(vid)  # insert pins the entry
                # at insert time, overflow is bounded by the footprint of
                # the pinned (sealed) entries — the §4.4 invariant
                if cache.size_ids > capacity:
                    pinned_ids = 2 * len(sealed_since_release)
                    assert cache.size_ids - capacity <= pinned_ids
            elif op == "seal":
                cache.seal(vid)
                if cache.contains(vid):
                    sealed_since_release.add(vid)
            else:
                cache.release()
                sealed_since_release.clear()
            # sealed entries are never evicted
            for v in sealed_since_release:
                assert cache.contains(v)

    @given(vids=st.lists(st.integers(min_value=0, max_value=1000),
                         min_size=1, max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_lrbu_never_loses_unsealed_data_silently(self, vids):
        """whatever is reported contained must be retrievable"""
        cache = LRBUCache(16, CostModel())
        for v in vids:
            cache.insert(v, np.asarray([v], dtype=np.int64))
            if cache.contains(v):
                assert cache.get(v)[0] == v


class TestGraphProperties:
    @given(g=graphs())
    @settings(max_examples=50, deadline=None)
    def test_degree_sum(self, g):
        assert int(g.degrees().sum()) == 2 * g.num_edges

    @given(g=graphs())
    @settings(max_examples=50, deadline=None)
    def test_neighbours_symmetric(self, g):
        for u, v in g.edges():
            assert g.has_edge(v, u)

    @given(g=graphs(), k=st.integers(min_value=1, max_value=5))
    @settings(max_examples=30, deadline=None)
    def test_partition_is_a_partition(self, g, k):
        from repro.graph import PartitionedGraph

        pg = PartitionedGraph(g, k, seed=0)
        seen = []
        for p in range(k):
            seen.extend(int(v) for v in pg.local_vertices(p))
        assert sorted(seen) == list(g.vertices())
