"""Tests for the two-layer work stealing model (repro.core.stealing)."""

from collections import deque

import pytest

from repro.core import distribute_to_workers, rebalance
from repro.core.stealing import STEALING_MODES


class TestWorkerDistribution:
    def test_stealing_balances(self):
        costs = [100.0] + [1.0] * 99
        totals = distribute_to_workers(costs, 4, stealing=True)
        assert sum(totals) == pytest.approx(sum(costs))
        assert max(totals) <= 2 * min(totals) + 100  # LPT bound-ish
        assert max(totals) - min(totals) <= 100.0

    def test_no_stealing_pins_batch_to_one_worker(self):
        costs = [1.0] * 40
        totals = distribute_to_workers(costs, 4, stealing=False,
                                       assign_key=2)
        assert totals == [0.0, 0.0, 40.0, 0.0]

    def test_no_stealing_key_is_sticky(self):
        # the same pivot key always selects the same worker — the
        # "distribute by firstly matched vertex" skew of §5.3
        a = distribute_to_workers([1.0], 4, stealing=False, assign_key=7)
        b = distribute_to_workers([2.0], 4, stealing=False, assign_key=7)
        c = distribute_to_workers([1.0], 4, stealing=False, assign_key=8)
        assert a.index(1.0) == b.index(2.0)
        assert a.index(1.0) != c.index(1.0)

    def test_conservation(self):
        costs = [3.0, 1.0, 4.0, 1.0, 5.0]
        for stealing in (True, False):
            totals = distribute_to_workers(costs, 3, stealing)
            assert sum(totals) == pytest.approx(14.0)

    def test_single_worker(self):
        assert distribute_to_workers([1.0, 2.0], 1, True) == [3.0]

    def test_empty_batch(self):
        assert distribute_to_workers([], 4, True) == [0.0] * 4

    def test_stealing_near_optimal_on_uniform(self):
        totals = distribute_to_workers([1.0] * 100, 4, stealing=True)
        assert max(totals) == pytest.approx(25.0)

    def test_chunked_distribution_keeps_range_skew(self):
        from repro.core.stealing import chunked_distribution

        costs = [100.0] * 25 + [1.0] * 75
        totals = chunked_distribution(costs, 4)
        assert totals[0] == pytest.approx(2500.0)
        assert totals[3] == pytest.approx(25.0)

    def test_chunked_distribution_empty(self):
        from repro.core.stealing import chunked_distribution

        assert chunked_distribution([], 4) == [0.0] * 4

    def test_modes_constant(self):
        assert STEALING_MODES == ("full", "none", "region-group")


class TestRebalance:
    def test_relieves_severe_skew(self):
        queues = [deque([[0] * 10 for _ in range(10)]), deque(), deque()]
        moves = rebalance(queues)
        assert moves
        loads = [sum(len(b) for b in q) for q in queues]
        # severe skew is brought under the stealing threshold
        assert max(loads) < 3 * (min(loads) + 10) + 10

    def test_no_moves_when_balanced(self):
        queues = [deque([[0] * 5]), deque([[0] * 5])]
        assert rebalance(queues) == []

    def test_no_moves_under_threshold(self):
        # 2× skew < default threshold 3× → no stealing
        queues = [deque([[0] * 5, [0] * 5]), deque([[0] * 5])]
        assert rebalance(queues) == []

    def test_lower_threshold_steals_more(self):
        queues = [deque([[0] * 5 for _ in range(4)]), deque()]
        assert rebalance(queues, threshold=1.0)

    def test_donor_keeps_last_batch(self):
        queues = [deque([[0] * 5]), deque()]
        assert rebalance(queues) == []
        assert len(queues[0]) == 1

    def test_single_machine_noop(self):
        queues = [deque([[0] * 5, [0] * 5])]
        assert rebalance(queues) == []

    def test_all_empty_noop(self):
        assert rebalance([deque(), deque()]) == []

    def test_moves_recorded_match_queues(self):
        big = [[i] * 4 for i in range(8)]  # distinguishable batches
        queues = [deque(big), deque(), deque()]
        moves = rebalance(queues)
        for src, dst, batch in moves:
            assert batch in queues[dst]
            assert batch not in queues[src]

    def test_custom_weight(self):
        queues = [deque(["aaaa", "bbbb", "cc"]), deque()]
        moves = rebalance(queues, weight=len, threshold=1.0)
        # a 4-weight item moves to the empty queue, improving balance
        assert moves
        assert sum(len(x) for x in queues[1]) >= 4

    def test_terminates_on_pathological_input(self):
        queues = [deque([[0]] * 1000), deque(), deque(), deque()]
        moves = rebalance(queues, threshold=1.0)
        assert len(moves) <= 16 * 4  # bounded sweep


class TestStealFromFront:
    """Steal-half semantics: thieves take from the *front* of the donor's
    deque (the oldest, coarsest work), never the batch the donor is about
    to process from the back — matching the steal-half-from-front deques
    of §5.3."""

    def test_steals_oldest_batches_first(self):
        batches = [[i] * 5 for i in range(6)]  # [0,...] is oldest
        queues = [deque(batches), deque()]
        moves = rebalance(queues, threshold=1.0)
        assert moves
        stolen = [b for _, _, b in moves]
        # the stolen set is exactly a prefix of the donor's original deque
        assert stolen == batches[: len(stolen)]

    def test_remaining_batches_keep_order(self):
        batches = [[i] * 5 for i in range(6)]
        queues = [deque(batches), deque()]
        moves = rebalance(queues, threshold=1.0)
        kept = list(queues[0])
        assert kept == batches[len(moves):]

    def test_donor_retains_at_least_one_batch(self):
        for n in range(1, 8):
            queues = [deque([[0] * 9 for _ in range(n)]), deque(), deque()]
            rebalance(queues, threshold=1.0)
            assert len(queues[0]) >= 1

    def test_batch_conservation(self):
        batches = [[i] * (1 + i % 3) for i in range(12)]
        queues = [deque(batches[:8]), deque(batches[8:]), deque()]
        before = sorted(map(tuple, batches))
        rebalance(queues, threshold=1.0)
        after = sorted(tuple(b) for q in queues for b in q)
        assert after == before


class TestTerminationDetection:
    """Inter-machine termination: once a rebalance pass settles, the
    system is at a fixed point — re-running stealing on the post-steal
    state performs no further moves, so idle machines can safely
    conclude the operator is drained (no oscillation, no livelock)."""

    def test_rebalance_reaches_fixed_point(self):
        queues = [deque([[0] * 4 for _ in range(10)]), deque(), deque()]
        first = rebalance(queues)
        assert first  # severe skew → at least one steal
        assert rebalance(queues) == []  # settled: nothing more to move

    def test_fixed_point_under_low_threshold(self):
        queues = [deque([[0] * 3 for _ in range(9)]), deque(), deque()]
        rebalance(queues, threshold=1.0)
        assert rebalance(queues, threshold=1.0) == []

    def test_empty_system_terminates_immediately(self):
        assert rebalance([deque(), deque(), deque()]) == []

    def test_single_machine_terminates_immediately(self):
        assert rebalance([deque([[0] * 4, [0] * 4])]) == []

    def test_no_oscillation_between_two_machines(self):
        # near-balanced loads must not trade batches back and forth
        queues = [deque([[0] * 5, [0] * 4]), deque([[0] * 4])]
        for _ in range(3):
            assert rebalance(queues) == []

    def test_repeated_passes_are_stable(self):
        queues = [deque([[i] * 2 for i in range(20)]), deque(), deque(),
                  deque()]
        rebalance(queues, threshold=1.0)
        snapshot = [list(q) for q in queues]
        for _ in range(3):
            rebalance(queues, threshold=1.0)
        assert [list(q) for q in queues] == snapshot
