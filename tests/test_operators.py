"""Unit tests for the runtime operators (repro.core.operators)."""

import pytest

from repro.cluster import Cluster
from repro.core.cache import LRBUCache, make_cache
from repro.core.dataflow import ExtendSpec, JoinSpec, ScanSpec
from repro.core.operators import (ExecContext, ExtendOp, JoinBuffer, ScanOp,
                                  SinkConsumer, join_stream)
from repro.graph import generators as gen


@pytest.fixture()
def ctx(er_graph):
    cluster = Cluster(er_graph, num_machines=4, workers_per_machine=2,
                      seed=1)
    caches = [LRBUCache(None, cluster.cost) for _ in range(4)]
    return ExecContext(cluster, caches, two_stage=True, batch_size=64)


class TestScanOp:
    def test_emits_local_edges(self, ctx, er_graph):
        op = ScanOp(ScanSpec(schema=(0, 1)), ctx)
        pivots = [int(v) for v in ctx.cluster.local_vertices(0)]
        out, costs, counted = op.process(0, pivots)
        assert counted == 0
        assert len(costs) == len(pivots)
        expect = sum(er_graph.degree(u) for u in pivots)
        assert len(out) == expect
        for u, v in out:
            assert er_graph.has_edge(u, v)

    def test_order_filter_lt(self, ctx):
        op = ScanOp(ScanSpec(schema=(0, 1), order="lt"), ctx)
        pivots = [int(v) for v in ctx.cluster.local_vertices(0)]
        out, _, _ = op.process(0, pivots)
        assert all(u < v for u, v in out)

    def test_order_filter_gt(self, ctx):
        op = ScanOp(ScanSpec(schema=(0, 1), order="gt"), ctx)
        pivots = [int(v) for v in ctx.cluster.local_vertices(0)]
        out, _, _ = op.process(0, pivots)
        assert all(u > v for u, v in out)

    def test_both_orders_partition_edges(self, ctx, er_graph):
        pivots = [int(v) for v in ctx.cluster.local_vertices(1)]
        lt = ScanOp(ScanSpec(schema=(0, 1), order="lt"), ctx).process(
            1, pivots)[0]
        gt = ScanOp(ScanSpec(schema=(0, 1), order="gt"), ctx).process(
            1, pivots)[0]
        assert len(lt) + len(gt) == sum(er_graph.degree(u) for u in pivots)

    def test_stolen_remote_pivots(self, ctx, er_graph):
        """pivots owned elsewhere are pulled via RPC"""
        remote = [int(v) for v in ctx.cluster.local_vertices(1)[:3]]
        out, _, _ = ScanOp(ScanSpec(schema=(0, 1)), ctx).process(0, remote)
        assert len(out) == sum(er_graph.degree(u) for u in remote)
        assert ctx.metrics.machines[0].rpc_requests >= 1


class TestExtendOp:
    def _edge_batch(self, ctx, machine):
        out, _, _ = ScanOp(ScanSpec(schema=(0, 1), order="lt"),
                           ctx).process(
            machine, [int(v) for v in ctx.cluster.local_vertices(machine)])
        return out

    def test_extension_produces_wedges(self, ctx, er_graph):
        spec = ExtendSpec(ext=(0,), out_schema=(0, 1, 2), new_vertex=2)
        op = ExtendOp(spec, ctx)
        batch = self._edge_batch(ctx, 0)
        out, costs, _ = op.process(0, batch)
        assert len(costs) == len(batch)
        for (u, v, w) in out:
            assert er_graph.has_edge(u, w)
            assert w != v and w != u  # injectivity

    def test_two_way_intersection_closes_triangles(self, ctx, er_graph):
        spec = ExtendSpec(ext=(0, 1), out_schema=(0, 1, 2), new_vertex=2)
        op = ExtendOp(spec, ctx)
        batch = self._edge_batch(ctx, 0)
        out, _, _ = op.process(0, batch)
        for (u, v, w) in out:
            assert er_graph.has_edge(u, w) and er_graph.has_edge(v, w)

    def test_candidate_order_conditions(self, ctx):
        spec = ExtendSpec(ext=(0,), out_schema=(0, 1, 2), new_vertex=2,
                          candidate_gt=(0,), candidate_lt=(1,))
        out, _, _ = ExtendOp(spec, ctx).process(0, self._edge_batch(ctx, 0))
        for (u, v, w) in out:
            assert w > u and w < v

    def test_verify_extend_checks_edge(self, ctx, er_graph):
        # verify that f[0] is a neighbour of f[1]: always true for edges
        spec = ExtendSpec(ext=(1,), out_schema=(0, 1), verify_pos=0)
        batch = self._edge_batch(ctx, 0)
        out, _, _ = ExtendOp(spec, ctx).process(0, batch)
        assert out == batch

    def test_verify_extend_filters_non_edges(self, ctx, er_graph):
        spec = ExtendSpec(ext=(1,), out_schema=(0, 1), verify_pos=0)
        non_edges = []
        for u in range(er_graph.num_vertices):
            for v in range(er_graph.num_vertices):
                if u != v and not er_graph.has_edge(u, v):
                    non_edges.append((u, v))
                if len(non_edges) >= 10:
                    break
            if len(non_edges) >= 10:
                break
        out, _, _ = ExtendOp(spec, ctx).process(0, non_edges)
        assert out == []

    def test_count_only_matches_materialised(self, ctx):
        spec = ExtendSpec(ext=(0, 1), out_schema=(0, 1, 2), new_vertex=2)
        op = ExtendOp(spec, ctx)
        batch = self._edge_batch(ctx, 0)
        out, _, _ = op.process(0, batch)
        _, _, counted = op.process(0, batch, count_only=True)
        assert counted == len(out)

    def test_fetch_stage_seals_and_releases(self, ctx):
        spec = ExtendSpec(ext=(0,), out_schema=(0, 1, 2), new_vertex=2)
        op = ExtendOp(spec, ctx)
        op.process(0, self._edge_batch(ctx, 0))
        # after the batch, everything is released
        assert ctx.caches[0].num_sealed == 0

    def test_remote_reads_populate_cache(self, ctx):
        spec = ExtendSpec(ext=(1,), out_schema=(0, 1, 2), new_vertex=2)
        op = ExtendOp(spec, ctx)
        op.process(0, self._edge_batch(ctx, 0))
        assert len(ctx.caches[0]) > 0
        assert ctx.metrics.machines[0].cache_misses > 0

    def test_second_pass_hits_cache(self, ctx):
        spec = ExtendSpec(ext=(1,), out_schema=(0, 1, 2), new_vertex=2)
        op = ExtendOp(spec, ctx)
        batch = self._edge_batch(ctx, 0)
        op.process(0, batch)
        before = ctx.metrics.machines[0].cache_hits
        op.process(0, batch)
        assert ctx.metrics.machines[0].cache_hits > before


class TestPerMissMode:
    def test_cncr_lru_pays_per_miss_rpcs(self, er_graph):
        cluster = Cluster(er_graph, num_machines=4, seed=1)
        caches = [make_cache("cncr-lru", 10_000, cluster.cost, workers=4)
                  for _ in range(4)]
        ctx = ExecContext(cluster, caches, two_stage=False, batch_size=64)
        spec = ExtendSpec(ext=(1,), out_schema=(0, 1, 2), new_vertex=2)
        op = ExtendOp(spec, ctx)
        scan = ScanOp(ScanSpec(schema=(0, 1)), ctx)
        batch, _, _ = scan.process(
            0, [int(v) for v in cluster.local_vertices(0)])
        op.process(0, batch)
        # per-miss RPCs: one request pair per remote miss, not per batch
        misses = cluster.metrics.machines[0].cache_misses
        assert misses > 0
        assert cluster.metrics.machines[0].rpc_requests == misses


class TestSink:
    def test_counting(self):
        sink = SinkConsumer(schema=(0, 1))
        sink.consume(0, [(1, 2), (3, 4)])
        sink.consume_count(1, 5)
        assert sink.count == 7

    def test_matches_require_collect(self):
        sink = SinkConsumer(schema=(0, 1))
        with pytest.raises(ValueError):
            sink.matches()

    def test_matches_reordered_by_schema(self):
        sink = SinkConsumer(schema=(2, 0, 1), collect=True)
        sink.consume(0, [(30, 10, 20)])
        assert sink.matches() == [(10, 20, 30)]


class TestJoinBufferAndStream:
    def test_shuffle_and_join(self, ctx):
        spec = JoinSpec(left_key=(1,), right_key=(0,), right_carry=(1,),
                        out_schema=(0, 1, 2))
        left = JoinBuffer(ctx, spec.left_key, arity=2, buffer_tuples=1000)
        right = JoinBuffer(ctx, spec.right_key, arity=2, buffer_tuples=1000)
        left.consume(0, [(1, 2), (3, 4)])
        right.consume(1, [(2, 9), (4, 7), (5, 1)])
        out = []
        for m in range(ctx.cluster.num_machines):
            for batch in join_stream(ctx, spec, left, right, m, 100):
                out.extend(batch)
        assert sorted(out) == [(1, 2, 9), (3, 4, 7)]

    def test_cross_distinct_filter(self, ctx):
        spec = JoinSpec(left_key=(1,), right_key=(0,), right_carry=(1,),
                        out_schema=(0, 1, 2), cross_distinct=((0, 2),))
        left = JoinBuffer(ctx, spec.left_key, 2, 1000)
        right = JoinBuffer(ctx, spec.right_key, 2, 1000)
        left.consume(0, [(1, 2)])
        right.consume(0, [(2, 1), (2, 9)])  # (1,2,1) violates distinctness
        out = []
        for m in range(ctx.cluster.num_machines):
            for batch in join_stream(ctx, spec, left, right, m, 100):
                out.extend(batch)
        assert out == [(1, 2, 9)]

    def test_cross_condition_filter(self, ctx):
        spec = JoinSpec(left_key=(1,), right_key=(0,), right_carry=(1,),
                        out_schema=(0, 1, 2), cross_conditions=((0, 2),))
        left = JoinBuffer(ctx, spec.left_key, 2, 1000)
        right = JoinBuffer(ctx, spec.right_key, 2, 1000)
        left.consume(0, [(5, 2)])
        right.consume(0, [(2, 3), (2, 9)])  # need out[0] < out[2]: 5 < x
        out = []
        for m in range(ctx.cluster.num_machines):
            for batch in join_stream(ctx, spec, left, right, m, 100):
                out.extend(batch)
        assert out == [(5, 2, 9)]

    def test_same_key_same_machine(self, ctx):
        buf = JoinBuffer(ctx, (0,), arity=2, buffer_tuples=1000)
        assert buf.destination((7, 1)) == buf.destination((7, 99))

    def test_spill_bounds_memory(self, ctx):
        buf = JoinBuffer(ctx, (0,), arity=2, buffer_tuples=10)
        # funnel many tuples with one key to one machine
        buf.consume(0, [(5, i) for i in range(200)])
        dest = buf.destination((5, 0))
        spilled = ctx.metrics.machines[dest].spilled_bytes
        assert spilled > 0
        # in-memory share stays at the threshold
        assert buf._in_memory[dest] <= 10

    def test_shuffle_charges_network(self, ctx):
        buf = JoinBuffer(ctx, (0,), arity=2, buffer_tuples=1000)
        buf.consume(0, [(i, i + 1) for i in range(50)])
        sent = sum(m.bytes_sent for m in ctx.metrics.machines)
        assert sent > 0


class TestJoinStreamRelease:
    def _buffers(self, ctx):
        spec = JoinSpec(left_key=(1,), right_key=(0,), right_carry=(1,),
                        out_schema=(0, 1, 2))
        left = JoinBuffer(ctx, spec.left_key, arity=2, buffer_tuples=1000)
        right = JoinBuffer(ctx, spec.right_key, arity=2, buffer_tuples=1000)
        left.consume(0, [(i, i + 1) for i in range(40)])
        right.consume(1, [(i + 1, i) for i in range(40)])
        return spec, left, right

    def test_consumed_stream_releases_buffers(self, ctx):
        spec, left, right = self._buffers(ctx)
        for m in range(ctx.cluster.num_machines):
            for _ in join_stream(ctx, spec, left, right, m, 100):
                pass
        for m, machine in enumerate(ctx.metrics.machines):
            assert machine.cur_mem_bytes == 0.0, m
        assert all(u == 0 for u in (m.mem_underflows
                                    for m in ctx.metrics.machines))

    def test_abandoned_stream_releases_buffers(self, ctx):
        """an early-terminated generator must not leak buffered memory
        from the ledger: the release runs in a finally"""
        spec, left, right = self._buffers(ctx)
        for m in range(ctx.cluster.num_machines):
            stream = join_stream(ctx, spec, left, right, m, 1)
            next(stream, None)      # consume at most one chunk ...
            stream.close()          # ... then abandon the generator
        for m, machine in enumerate(ctx.metrics.machines):
            assert machine.cur_mem_bytes == 0.0, m
            assert machine.mem_underflows == 0, m
