"""Tests for the HUGE engine: correctness, configuration, scheduler modes."""

import pytest

from repro.baselines import count_matches
from repro.cluster import Cluster, CostModel
from repro.core import EngineConfig, HugeEngine
from repro.core.plan import (benu_plan, rads_plan, seed_plan, starjoin_plan,
                             wco_plan)
from repro.graph import generators as gen
from repro.query import ExactEstimator, get_query

ALL_QUERIES = ["triangle", "q1", "q2", "q3", "q4", "q5", "q6", "q7", "q8"]


class TestCorrectness:
    @pytest.mark.parametrize("name", ALL_QUERIES)
    def test_counts_match_reference_er(self, name, cluster, er_graph):
        q = get_query(name)
        result = HugeEngine(cluster).run(q)
        assert result.count == count_matches(er_graph, q)

    @pytest.mark.parametrize("name", ["triangle", "q1", "q2", "q4"])
    def test_counts_match_reference_ba(self, name, ba_cluster, ba_graph):
        q = get_query(name)
        result = HugeEngine(ba_cluster).run(q)
        assert result.count == count_matches(ba_graph, q)

    def test_collected_matches_are_exact(self, cluster, er_graph):
        from repro.baselines import enumerate_matches

        q = get_query("q1")
        engine = HugeEngine(cluster, EngineConfig(collect_results=True))
        result = engine.run(q)
        assert sorted(result.matches) == sorted(enumerate_matches(er_graph, q))

    def test_matches_are_real_embeddings(self, cluster, er_graph):
        q = get_query("q2")
        result = HugeEngine(
            cluster, EngineConfig(collect_results=True)).run(q)
        for f in result.matches:
            assert len(set(f)) == q.num_vertices
            for (u, v) in q.edges:
                assert er_graph.has_edge(f[u], f[v])

    def test_single_machine_cluster(self, er_graph):
        cl = Cluster(er_graph, num_machines=1, workers_per_machine=1)
        q = get_query("q1")
        assert HugeEngine(cl).run(q).count == count_matches(er_graph, q)

    def test_many_machines(self, er_graph):
        cl = Cluster(er_graph, num_machines=16, workers_per_machine=2)
        q = get_query("triangle")
        assert HugeEngine(cl).run(q).count == count_matches(er_graph, q)

    def test_empty_result(self):
        g = gen.path_graph(10)  # no triangles
        cl = Cluster(g, num_machines=2)
        assert HugeEngine(cl).run(get_query("triangle")).count == 0

    def test_star_query(self, cluster, er_graph):
        from repro.query import QueryGraph

        star = QueryGraph(4, [(0, 1), (0, 2), (0, 3)])
        result = HugeEngine(cluster).run(star)
        assert result.count == count_matches(er_graph, star)

    def test_single_edge_query(self, cluster, er_graph):
        from repro.query import QueryGraph

        edge = QueryGraph(2, [(0, 1)])
        result = HugeEngine(cluster).run(edge)
        assert result.count == er_graph.num_edges


class TestPluginMode:
    """Remark 3.2: existing logical plans run unchanged inside HUGE."""

    @pytest.mark.parametrize("builder", [wco_plan, benu_plan, rads_plan,
                                         starjoin_plan])
    @pytest.mark.parametrize("name", ["q1", "q2", "q4", "q7"])
    def test_plugin_plan_counts(self, builder, name, cluster, er_graph):
        q = get_query(name)
        result = HugeEngine(cluster).run(plan=builder(q))
        assert result.count == count_matches(er_graph, q)

    def test_seed_plan_plugin(self, cluster, er_graph):
        q = get_query("q6")
        plan = seed_plan(q, ExactEstimator(er_graph))
        result = HugeEngine(cluster).run(plan=plan)
        assert result.count == count_matches(er_graph, q)

    def test_run_needs_query_or_plan(self, cluster):
        with pytest.raises(ValueError):
            HugeEngine(cluster).run()


class TestConfiguration:
    def test_cache_variants_all_correct(self, cluster, er_graph):
        from repro.core import CACHE_VARIANTS

        q = get_query("q1")
        expect = count_matches(er_graph, q)
        for variant in CACHE_VARIANTS:
            cfg = EngineConfig(cache_variant=variant)
            assert HugeEngine(cluster, cfg).run(q).count == expect

    def test_stealing_modes_all_correct(self, cluster, er_graph):
        q = get_query("q2")
        expect = count_matches(er_graph, q)
        for mode in ("full", "none", "region-group"):
            cfg = EngineConfig(stealing=mode)
            assert HugeEngine(cluster, cfg).run(q).count == expect

    def test_tiny_queue_still_correct(self, cluster, er_graph):
        """DFS-style scheduling (queue ≈ 0) must not lose results"""
        q = get_query("q1")
        cfg = EngineConfig(output_queue_capacity=1)
        assert HugeEngine(cluster, cfg).run(q).count == \
            count_matches(er_graph, q)

    def test_infinite_queue_still_correct(self, cluster, er_graph):
        """BFS-style scheduling"""
        q = get_query("q1")
        cfg = EngineConfig(output_queue_capacity=float("inf"))
        assert HugeEngine(cluster, cfg).run(q).count == \
            count_matches(er_graph, q)

    def test_tiny_batches_still_correct(self, cluster, er_graph):
        q = get_query("q2")
        cfg = EngineConfig(batch_size=2, scan_pivot_chunk=1)
        assert HugeEngine(cluster, cfg).run(q).count == \
            count_matches(er_graph, q)

    def test_tiny_cache_still_correct(self, cluster, er_graph):
        q = get_query("q1")
        cfg = EngineConfig(cache_capacity_ids=8)
        assert HugeEngine(cluster, cfg).run(q).count == \
            count_matches(er_graph, q)

    def test_invalid_cache_variant(self):
        with pytest.raises(ValueError):
            EngineConfig(cache_variant="bogus")

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            EngineConfig(cache_capacity_fraction=2.0)

    def test_invalid_stealing(self):
        with pytest.raises(ValueError):
            EngineConfig(stealing="sometimes")

    def test_invalid_batch(self):
        with pytest.raises(ValueError):
            EngineConfig(batch_size=0)


class TestMetricsOutput:
    def test_report_is_populated(self, cluster):
        result = HugeEngine(cluster).run(get_query("q1"))
        rep = result.report
        assert rep.total_time_s > 0
        assert rep.compute_time_s > 0
        assert rep.peak_memory_bytes > 0
        assert result.throughput_per_s > 0

    def test_bigger_cache_fewer_misses(self, ba_graph):
        q = get_query("q1")
        rates = []
        for ids in (64, 100000):
            cl = Cluster(ba_graph, num_machines=4, seed=1)
            cfg = EngineConfig(cache_capacity_ids=ids)
            rates.append(HugeEngine(cl, cfg).run(q).cache_hit_rate)
        assert rates[1] >= rates[0]

    def test_memory_bound_theorem(self, ba_graph):
        """Theorem 5.4: queue memory stays O(|Vq|² · D_G) per machine."""
        q = get_query("q3")
        cl = Cluster(ba_graph, num_machines=4, seed=1)
        cfg = EngineConfig(output_queue_capacity=64, cache_capacity_ids=1,
                           batch_size=16)
        result = HugeEngine(cl, cfg).run(q)
        bound_tuples = (q.num_vertices ** 2) * ba_graph.max_degree \
            * (64 + 16 * ba_graph.max_degree)
        # queue contents measured in ids × 8 bytes, plus constant slack
        assert result.report.peak_memory_bytes <= bound_tuples * 8

    def test_reset_metrics_flag(self, cluster):
        engine = HugeEngine(cluster)
        r1 = engine.run(get_query("triangle"))
        r2 = engine.run(get_query("triangle"), reset_metrics=False)
        # accumulated: second run's elapsed must exceed the first
        assert r2.report.total_time_s > r1.report.total_time_s

    def test_fetch_time_reported(self, cluster):
        result = HugeEngine(cluster).run(get_query("q1"))
        assert result.fetch_time_s >= 0
        assert result.fetch_time_s < result.report.total_time_s
