"""Tests for sub-query decomposition (repro.query.decompose)."""

import pytest

from repro.query import (SubQuery, complete_star_root, connected_subqueries,
                         full_subquery, get_query, is_complete_star_join,
                         splits, star_subqueries)


def sq(*edges):
    return SubQuery(frozenset(tuple(sorted(e)) for e in edges))


class TestSubQuery:
    def test_vertices(self):
        s = sq((0, 1), (1, 2))
        assert s.vertices == frozenset({0, 1, 2})

    def test_degree_and_neighbours(self):
        s = sq((0, 1), (1, 2), (1, 3))
        assert s.degree(1) == 3
        assert s.neighbours(1) == frozenset({0, 2, 3})

    def test_connectivity(self):
        assert sq((0, 1), (1, 2)).is_connected()
        assert not sq((0, 1), (2, 3)).is_connected()

    def test_single_edge_is_star(self):
        s = sq((3, 7))
        assert s.is_star()
        assert s.star_root() == 3  # smaller endpoint by convention
        assert s.star_leaves() == frozenset({7})

    def test_proper_star(self):
        s = sq((1, 0), (1, 2), (1, 5))
        assert s.is_star()
        assert s.star_root() == 1
        assert s.star_leaves() == frozenset({0, 2, 5})

    def test_path_not_star(self):
        assert not sq((0, 1), (1, 2), (2, 3)).is_star()

    def test_triangle_not_star(self):
        assert not sq((0, 1), (1, 2), (0, 2)).is_star()

    def test_star_root_raises_for_non_star(self):
        with pytest.raises(ValueError):
            sq((0, 1), (1, 2), (0, 2)).star_root()

    def test_union(self):
        s = sq((0, 1)).union(sq((1, 2)))
        assert s == sq((0, 1), (1, 2))

    def test_to_query_graph_relabels(self):
        s = sq((2, 5), (5, 9))
        pattern, schema = s.to_query_graph()
        assert schema == [2, 5, 9]
        assert pattern.has_edge(0, 1) and pattern.has_edge(1, 2)
        assert not pattern.has_edge(0, 2)


class TestEnumeration:
    def test_star_subqueries_of_square(self):
        stars = list(star_subqueries(get_query("q1")))
        # 4 edges + 4 wedges (one per centre)
        assert len(stars) == 8
        assert all(s.is_star() for s in stars)

    def test_star_subqueries_of_clique(self):
        stars = list(star_subqueries(get_query("q3")))
        # per vertex: C(3,1)+C(3,2)+C(3,3) = 7 → 28 total, but single
        # edges are shared between their two endpoints: 6 dups
        assert len(stars) == 22

    def test_connected_subqueries_of_triangle(self):
        subs = list(connected_subqueries(get_query("triangle")))
        # 3 edges + 3 wedges + 1 triangle
        assert len(subs) == 7
        assert all(s.is_connected() for s in subs)

    def test_connected_subqueries_sorted_by_size(self):
        sizes = [s.num_edges
                 for s in connected_subqueries(get_query("q2"))]
        assert sizes == sorted(sizes)

    def test_full_subquery(self):
        q = get_query("q1")
        assert full_subquery(q).edges == q.edges

    def test_connected_subqueries_include_full(self):
        q = get_query("q4")
        assert full_subquery(q) in set(connected_subqueries(q))


class TestSplits:
    def test_square_splits(self):
        got = list(splits(full_subquery(get_query("q1"))))
        # the square decomposes into edge+path3 (4 ways) and wedge+wedge
        # (2 ways) = 6 connected splits
        assert len(got) == 6
        for left, right in got:
            assert left.edges | right.edges == set(get_query("q1").edges)
            assert not (left.edges & right.edges)
            assert left.is_connected() and right.is_connected()
            assert left.num_edges >= right.num_edges

    def test_single_edge_has_no_splits(self):
        assert list(splits(sq((0, 1)))) == []

    def test_no_mirrored_duplicates(self):
        seen = set()
        for left, right in splits(full_subquery(get_query("q2"))):
            key = frozenset((left.edges, right.edges))
            assert key not in seen
            seen.add(key)


class TestCompleteStarJoin:
    def test_vertex_extension(self):
        # extending a wedge {0-1,1-2} by vertex 3 connected to 0 and 2
        left = sq((0, 1), (1, 2))
        right = sq((0, 3), (2, 3))
        assert is_complete_star_join(left, right)
        assert complete_star_root(left, right) == 3

    def test_single_edge_extension(self):
        left = sq((0, 1))
        right = sq((1, 2))
        assert is_complete_star_join(left, right)
        assert complete_star_root(left, right) == 2  # the new vertex

    def test_not_complete_when_leaf_new(self):
        left = sq((0, 1))
        right = sq((2, 3))  # disconnected from left entirely
        assert not is_complete_star_join(left, right)

    def test_not_complete_when_some_leaves_new(self):
        left = sq((0, 1))
        # star rooted at 0 with leaves {1 (matched), 2 (new)}
        right = sq((0, 2))
        # leaves of (0;2) are {2} ⊄ {0,1}; but root choice 2 gives leaf 0 ✓
        assert is_complete_star_join(left, right)
        assert complete_star_root(left, right) == 2

    def test_non_star_right(self):
        left = sq((0, 1))
        right = sq((1, 2), (2, 3), (3, 1))
        assert not is_complete_star_join(left, right)

    def test_fully_covered_star(self):
        # verification case: root and all leaves already matched
        left = sq((0, 1), (1, 2))
        right = sq((0, 2))
        root = complete_star_root(left, right)
        assert root in (0, 2)
