"""Canonical-form tests for ``QueryGraph`` (the plan-cache key).

The canonical key must be a complete isomorphism invariant on the
pattern sizes the system plans: isomorphic patterns (any relabelling,
labels permuted along) share the key; non-isomorphic patterns never
collide; and the canonical form itself is a relabelling of the input
(same counts, round-trips through its own canonicalisation).
"""

import itertools

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.query import QUERIES, QueryGraph, get_query
from repro.testing.strategies import labelled_patterns, patterns


def brute_isomorphic(a: QueryGraph, b: QueryGraph) -> bool:
    """Ground truth by permutation search (tiny patterns only)."""
    if (a.num_vertices != b.num_vertices
            or len(a.edges) != len(b.edges)):
        return False
    ea = {tuple(sorted(e)) for e in a.edges}
    for perm in itertools.permutations(range(b.num_vertices)):
        eb = {tuple(sorted((perm[u], perm[v]))) for u, v in b.edges}
        if ea == eb and all(a.label(v) == b.label(perm[v])
                            for v in range(a.num_vertices)):
            return True
    return False


def random_relabelling(q: QueryGraph, seed: int) -> QueryGraph:
    import random

    perm = list(range(q.num_vertices))
    random.Random(seed).shuffle(perm)
    return q.relabel(dict(enumerate(perm)))


class TestCanonicalForm:
    @pytest.mark.parametrize("name", sorted(QUERIES))
    def test_round_trip(self, name):
        """Canonicalising a canonical form is the identity mapping."""
        q = get_query(name)
        canon, mapping = q.canonical_form()
        assert sorted(mapping) == list(range(q.num_vertices))
        canon2, mapping2 = canon.canonical_form()
        assert mapping2 == tuple(range(canon.num_vertices))
        assert canon2.canonical_key() == canon.canonical_key()

    @pytest.mark.parametrize("name", sorted(QUERIES))
    def test_canonical_form_is_isomorphic(self, name):
        q = get_query(name)
        canon, mapping = q.canonical_form()
        # mapping really is the isomorphism q -> canon
        assert {tuple(sorted((mapping[u], mapping[v])))
                for u, v in q.edges} == \
            {tuple(sorted(e)) for e in canon.edges}

    @pytest.mark.parametrize("name", sorted(QUERIES))
    @pytest.mark.parametrize("seed", range(5))
    def test_benchmark_queries_key_stable(self, name, seed):
        """q1..q8: every relabelling lands on the same key."""
        q = get_query(name)
        assert random_relabelling(q, seed).canonical_key() == \
            q.canonical_key()

    def test_distinct_benchmark_queries_distinct_keys(self):
        keys = {name: get_query(name).canonical_key()
                for name in sorted(QUERIES)}
        assert len(set(keys.values())) == len(keys)


class TestCanonicalKeyProperties:
    @given(q=patterns(), seed=st.integers(min_value=0, max_value=999))
    def test_isomorphic_share_key(self, q, seed):
        assert random_relabelling(q, seed).canonical_key() == \
            q.canonical_key()

    @given(q=labelled_patterns(), seed=st.integers(min_value=0,
                                                   max_value=999))
    def test_labelled_isomorphic_share_key(self, q, seed):
        assert random_relabelling(q, seed).canonical_key() == \
            q.canonical_key()

    @given(a=patterns(max_vertices=4), b=patterns(max_vertices=4))
    def test_key_equality_iff_isomorphic(self, a, b):
        """Completeness: equal keys <=> actually isomorphic."""
        assert (a.canonical_key() == b.canonical_key()) == \
            brute_isomorphic(a, b)

    @given(a=labelled_patterns(), b=labelled_patterns())
    def test_labelled_key_equality_iff_isomorphic(self, a, b):
        assert (a.canonical_key() == b.canonical_key()) == \
            brute_isomorphic(a, b)
