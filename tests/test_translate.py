"""Tests for Algorithm 2 translation and the §5.2 rewrites."""

import pytest

from repro.core.dataflow import ExtendSpec, JoinSpec, ScanSpec, Segment
from repro.core.plan import (configure_plan, rads_plan, seed_plan, translate,
                             wco_plan)
from repro.query import ExactEstimator, get_query


def translate_query(name, plan_builder=wco_plan, **kwargs):
    q = get_query(name)
    return translate(configure_plan(plan_builder(q, **kwargs)))


class TestSpecs:
    def test_scan_spec_validation(self):
        with pytest.raises(ValueError):
            ScanSpec(schema=(0, 1), order="sideways")

    def test_extend_spec_needs_mode(self):
        with pytest.raises(ValueError):
            ExtendSpec(ext=(0,), out_schema=(0, 1))  # neither new nor verify
        with pytest.raises(ValueError):
            ExtendSpec(ext=(0,), out_schema=(0, 1), new_vertex=1,
                       verify_pos=0)  # both

    def test_extend_spec_needs_ext(self):
        with pytest.raises(ValueError):
            ExtendSpec(ext=(), out_schema=(0, 1), new_vertex=1)

    def test_join_spec_key_validation(self):
        with pytest.raises(ValueError):
            JoinSpec(left_key=(), right_key=(), right_carry=(),
                     out_schema=(0,))
        with pytest.raises(ValueError):
            JoinSpec(left_key=(0,), right_key=(0, 1), right_carry=(),
                     out_schema=(0,))

    def test_segment_out_schema_defaults(self):
        seg = Segment(source=ScanSpec(schema=(0, 1)))
        assert seg.out_schema == (0, 1)


class TestWcoTranslation:
    def test_square_is_scan_plus_two_extends(self):
        seg = translate_query("q1")
        assert isinstance(seg.source, ScanSpec)
        assert len(seg.extends) == 2
        assert seg.left is None and seg.right is None

    def test_clique_translation_schema_covers_query(self):
        seg = translate_query("q3")
        assert set(seg.out_schema) == {0, 1, 2, 3}

    def test_final_extend_of_square_intersects_two(self):
        seg = translate_query("q1")
        last = seg.extends[-1]
        assert len(last.ext) == 2
        assert last.new_vertex is not None

    def test_conditions_attached_somewhere(self):
        seg = translate_query("q3")  # clique: 6 conditions
        n_scan = 1 if seg.source.order else 0
        n_ext = sum(len(e.candidate_lt) + len(e.candidate_gt)
                    for e in seg.extends)
        assert n_scan + n_ext == 6

    def test_operator_count(self):
        seg = translate_query("q1")
        assert seg.num_operators == 3
        assert seg.total_operators() == 3
        assert seg.max_arity() == 4


class TestStarScanRewrite:
    def test_star_query_becomes_edge_scan_plus_extends(self):
        """§5.2: SCAN(star with L leaves) → edge scan + (|L|-1) extends"""
        from repro.query import QueryGraph
        from repro.core.plan.optimiser import optimal_plan
        from repro.query import ExactEstimator
        from repro.graph import generators as gen

        g = gen.erdos_renyi(20, 0.3, seed=1)
        star = QueryGraph(4, [(0, 1), (0, 2), (0, 3)])
        plan = optimal_plan(star, ExactEstimator(g), 4, g.num_edges)
        seg = translate(plan)
        assert isinstance(seg.source, ScanSpec)
        assert len(seg.extends) == 2
        # all extends grow from the root's position
        for e in seg.extends:
            assert e.ext == (seg.out_schema.index(0),)


class TestPullingHashJoinRewrite:
    def test_rads_plan_translates_without_push_join(self):
        """RADS' star-expansions all have matched roots → pure extends"""
        seg = translate_query("q1", rads_plan)
        assert isinstance(seg.source, ScanSpec)
        assert seg.left is None

    def test_verify_extend_present_for_closing_edge(self):
        # the square via RADS ends with a verification of the closing edge
        seg = translate_query("q1", rads_plan)
        assert any(e.is_verify for e in seg.extends)

    def test_verify_extend_keeps_schema(self):
        seg = translate_query("q1", rads_plan)
        v = next(e for e in seg.extends if e.is_verify)
        assert v.out_schema == seg.extends[
            seg.extends.index(v) - 1].out_schema if seg.extends.index(v) else True


class TestPushJoinTranslation:
    def test_seed_plan_on_path_query_uses_push_join(self, er_graph):
        est = ExactEstimator(er_graph)
        seg = translate_query("q6", seed_plan, estimator=est)
        # the 5-path splits into two wedges joined on pushing
        assert isinstance(seg.source, JoinSpec)
        assert seg.left is not None and seg.right is not None

    def test_join_keys_align(self, er_graph):
        est = ExactEstimator(er_graph)
        seg = translate_query("q6", seed_plan, estimator=est)
        spec = seg.source
        lsch, rsch = seg.left.out_schema, seg.right.out_schema
        left_key_verts = [lsch[p] for p in spec.left_key]
        right_key_verts = [rsch[p] for p in spec.right_key]
        assert left_key_verts == right_key_verts

    def test_out_schema_covers_query(self, er_graph):
        est = ExactEstimator(er_graph)
        seg = translate_query("q6", seed_plan, estimator=est)
        assert set(seg.out_schema) == {0, 1, 2, 3, 4}

    def test_cross_distinct_pairs_disjoint_sides(self, er_graph):
        est = ExactEstimator(er_graph)
        seg = translate_query("q6", seed_plan, estimator=est)
        spec = seg.source
        for (i, j) in spec.cross_distinct:
            assert i != j
            assert spec.out_schema[i] != spec.out_schema[j]
