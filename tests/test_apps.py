"""Tests for the §6 applications, validated against networkx."""

import networkx as nx
import pytest

from repro.apps import (connected_patterns, count_st_paths,
                        enumerate_st_paths, frequent_patterns, motif_census,
                        motif_counts, shortest_path, shortest_path_lengths)
from repro.cluster import Cluster
from repro.graph import generators as gen


@pytest.fixture(scope="module")
def graph():
    return gen.barabasi_albert(100, 3, seed=6)


@pytest.fixture(scope="module")
def nxg(graph):
    return nx.Graph(list(graph.edges()))


@pytest.fixture()
def app_cluster(graph):
    return Cluster(graph, num_machines=4, workers_per_machine=2, seed=2)


class TestShortestPath:
    def test_matches_networkx_lengths(self, app_cluster, nxg):
        for target in (10, 50, 99):
            path = shortest_path(app_cluster, 0, target)
            assert len(path) - 1 == nx.shortest_path_length(nxg, 0, target)

    def test_path_is_valid_walk(self, app_cluster, graph):
        path = shortest_path(app_cluster, 3, 77)
        for a, b in zip(path, path[1:]):
            assert graph.has_edge(a, b)

    def test_trivial_path(self, app_cluster):
        assert shortest_path(app_cluster, 5, 5) == [5]

    def test_unreachable_within_hops(self, app_cluster, nxg):
        far = max(nx.single_source_shortest_path_length(nxg, 0).items(),
                  key=lambda kv: kv[1])
        if far[1] >= 2:
            assert shortest_path(app_cluster, 0, far[0],
                                 max_hops=far[1] - 1) is None

    def test_disconnected_returns_none(self):
        from repro.graph import Graph

        g = Graph.from_edges([(0, 1), (2, 3)])
        cl = Cluster(g, num_machines=2)
        assert shortest_path(cl, 0, 3) is None

    def test_out_of_range(self, app_cluster):
        with pytest.raises(ValueError):
            shortest_path(app_cluster, 0, 10_000)

    def test_lengths_match_networkx(self, app_cluster, nxg):
        ours = shortest_path_lengths(app_cluster, 0)
        theirs = dict(nx.single_source_shortest_path_length(nxg, 0))
        assert ours == theirs

    def test_charges_communication(self, app_cluster):
        shortest_path_lengths(app_cluster, 0)
        total = sum(m.bytes_sent
                    for m in app_cluster.metrics.machines)
        assert total > 0


class TestHopConstrainedPaths:
    @pytest.mark.parametrize("hops", [1, 2, 3, 4])
    def test_matches_networkx(self, app_cluster, nxg, hops):
        ours = enumerate_st_paths(app_cluster, 0, 9, hops)
        theirs = sorted(tuple(p)
                        for p in nx.all_simple_paths(nxg, 0, 9, cutoff=hops))
        assert ours == theirs

    def test_count(self, app_cluster, nxg):
        assert count_st_paths(app_cluster, 2, 8, 3) == len(
            list(nx.all_simple_paths(nxg, 2, 8, cutoff=3)))

    def test_zero_hops(self, app_cluster):
        assert enumerate_st_paths(app_cluster, 1, 2, 0) == []

    def test_same_endpoints(self, app_cluster):
        assert enumerate_st_paths(app_cluster, 4, 4, 3) == [(4,)]

    def test_paths_are_simple(self, app_cluster):
        for p in enumerate_st_paths(app_cluster, 0, 20, 4):
            assert len(set(p)) == len(p)

    def test_invalid_args(self, app_cluster):
        with pytest.raises(ValueError):
            enumerate_st_paths(app_cluster, 0, 1, -1)
        with pytest.raises(ValueError):
            enumerate_st_paths(app_cluster, 0, 99999, 2)


class TestMining:
    def test_connected_patterns_size2(self):
        assert len(connected_patterns(2)) == 1  # the single edge

    def test_connected_patterns_size3(self):
        pats = connected_patterns(3)
        assert len(pats) == 2  # wedge + triangle

    def test_connected_patterns_size4(self):
        assert len(connected_patterns(4)) == 6

    def test_connected_patterns_size5(self):
        assert len(connected_patterns(5)) == 21

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            connected_patterns(1)
        with pytest.raises(ValueError):
            connected_patterns(6)

    def test_motif_counts_match_reference(self, app_cluster, graph):
        from repro.baselines import count_matches

        counts = motif_counts(app_cluster, 3)
        pats = {p.name: p for p in connected_patterns(3)}
        for name, count in counts.items():
            assert count == count_matches(graph, pats[name])

    def test_frequent_patterns_threshold(self, app_cluster):
        found = frequent_patterns(app_cluster, max_size=3, min_support=1)
        assert all(count >= 1 for _, count in found)
        # the single edge pattern is always found on a non-empty graph
        assert any(p.num_vertices == 2 for p, _ in found)

    def test_frequent_patterns_high_threshold_empty_tail(self, app_cluster):
        found = frequent_patterns(app_cluster, max_size=4,
                                  min_support=10 ** 9)
        assert found == []

    def test_frequent_invalid_size(self, app_cluster):
        with pytest.raises(ValueError):
            frequent_patterns(app_cluster, max_size=1, min_support=1)

    def test_census_triangles_match_networkx(self, app_cluster, nxg):
        res = motif_census(app_cluster, 3)
        triangles = sum(nx.triangles(nxg).values()) // 3
        by_key = {res.class_keys[n]: c for n, c in res.counts.items()}
        from repro.query import QueryGraph

        tri_key = QueryGraph(3, [(0, 1), (1, 2), (2, 0)]).canonical_key()
        assert by_key[tri_key] == triangles
        # non-induced wedge embeddings = induced wedges + 3 per triangle
        wedge_key = QueryGraph(3, [(0, 1), (1, 2)]).canonical_key()
        wedges = sum(d * (d - 1) // 2 for _, d in nxg.degree())
        assert by_key[wedge_key] == wedges - 3 * triangles

    def test_census_vs_motif_counts_relationship(self, app_cluster):
        """Engine motif counts are non-induced: triangles agree with the
        census exactly; wedges exceed the induced census count."""
        census = motif_census(app_cluster, 3)
        engine = motif_counts(app_cluster, 3)
        by_name = {n: (census.counts[n], engine[n]) for n in engine}
        pats = {p.name: p for p in connected_patterns(3)}
        for name, (induced, non_induced) in by_name.items():
            if pats[name].num_edges == 3:  # triangle: closed, so equal
                assert induced == non_induced
            else:
                assert non_induced >= induced
