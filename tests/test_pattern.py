"""Unit tests for query patterns (repro.query.pattern)."""

import pytest

from repro.query import QUERIES, QueryGraph, get_query


class TestQueryGraph:
    def test_basic(self):
        q = QueryGraph(3, [(0, 1), (1, 2)])
        assert q.num_vertices == 3
        assert q.num_edges == 2
        assert q.neighbours(1) == frozenset({0, 2})

    def test_edges_normalised(self):
        q = QueryGraph(3, [(2, 0)])
        assert (0, 2) in q.edges

    def test_duplicate_edges_collapse(self):
        q = QueryGraph(2, [(0, 1), (1, 0)])
        assert q.num_edges == 1

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            QueryGraph(2, [(1, 1)])

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            QueryGraph(2, [(0, 2)])

    def test_has_edge_symmetric(self):
        q = QueryGraph(3, [(0, 2)])
        assert q.has_edge(0, 2) and q.has_edge(2, 0)

    def test_degree(self):
        q = get_query("q2")
        assert sorted(q.degree(v) for v in q.vertices()) == [2, 2, 3, 3]

    def test_equality_and_hash(self):
        a = QueryGraph(3, [(0, 1), (1, 2)], name="x")
        b = QueryGraph(3, [(1, 2), (0, 1)], name="y")
        assert a == b
        assert hash(a) == hash(b)

    def test_name_default(self):
        assert "pattern" in QueryGraph(2, [(0, 1)]).name

    def test_iter(self):
        assert list(QueryGraph(3, [(0, 1), (1, 2)])) == [0, 1, 2]


class TestStructure:
    def test_connected(self):
        assert get_query("q1").is_connected()

    def test_disconnected(self):
        assert not QueryGraph(4, [(0, 1), (2, 3)]).is_connected()

    def test_is_star_edge(self):
        assert QueryGraph(2, [(0, 1)]).is_star()

    def test_is_star_proper(self):
        q = QueryGraph(4, [(0, 1), (0, 2), (0, 3)])
        assert q.is_star()
        assert q.star_root() == 0

    def test_triangle_not_star(self):
        assert not get_query("triangle").is_star()

    def test_path_not_star(self):
        assert not get_query("q6").is_star()

    def test_star_root_requires_star(self):
        with pytest.raises(ValueError):
            get_query("triangle").star_root()

    def test_is_clique(self):
        assert get_query("q3").is_clique()
        assert get_query("triangle").is_clique()
        assert not get_query("q1").is_clique()

    def test_relabel(self):
        q = get_query("triangle").relabel({0: 2, 1: 0, 2: 1})
        assert q.is_clique()


class TestBenchmarkQueries:
    def test_all_queries_present(self):
        for name in ("q1", "q2", "q3", "q4", "q5", "q6", "q7", "q8",
                     "triangle"):
            assert name in QUERIES

    def test_q1_is_square(self):
        q = get_query("q1")
        assert q.num_vertices == 4 and q.num_edges == 4
        assert all(q.degree(v) == 2 for v in q.vertices())

    def test_q2_is_diamond(self):
        q = get_query("q2")
        assert q.num_vertices == 4 and q.num_edges == 5

    def test_q3_is_4clique(self):
        q = get_query("q3")
        assert q.num_vertices == 4 and q.is_clique()

    def test_q4_is_house(self):
        q = get_query("q4")
        assert q.num_vertices == 5 and q.num_edges == 6

    def test_q5_is_double_square(self):
        q = get_query("q5")
        assert q.num_vertices == 6 and q.num_edges == 7

    def test_q6_is_5path(self):
        q = get_query("q6")
        assert q.num_vertices == 5 and q.num_edges == 4
        assert sorted(q.degree(v) for v in q.vertices()) == [1, 1, 2, 2, 2]

    def test_q7_is_5cycle(self):
        q = get_query("q7")
        assert q.num_vertices == 5 and q.num_edges == 5
        assert all(q.degree(v) == 2 for v in q.vertices())

    def test_q8_is_6cycle(self):
        q = get_query("q8")
        assert q.num_vertices == 6 and q.num_edges == 6
        assert all(q.degree(v) == 2 for v in q.vertices())

    def test_unknown_query(self):
        with pytest.raises(KeyError):
            get_query("q99")

    def test_lookup_case_insensitive(self):
        assert get_query("Q1") == get_query("q1")
