"""Tests for the size-k motif census: ESU enumeration over bitset
adjacency, the relabelling-closed canonical memo, and the census
conformance family.

The ground truth here is a third, test-local implementation (an
``itertools.combinations`` sweep classified by the lexicographically
minimal relabelling), independent of both the ESU walk under test and
the conformance oracles' own reference.
"""

from itertools import combinations, permutations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.mining import connected_patterns, motif_census
from repro.cluster import Cluster
from repro.core.kernels import adjacency_bitsets, induced_bitrows
from repro.graph import Graph
from repro.graph import generators as gen
from repro.query import QueryGraph, automorphism_count
from repro.query.canonical import (MAX_MEMO_VERTICES, CanonicalMemo,
                                   permute_bitrows)
from repro.testing import census_matrix, check_census_case, \
    compute_census_reference, default_matrix, run_case
from repro.testing.oracles import CaseOutcome
from repro.testing.strategies import graphs
from repro.testing.workloads import Workload, random_workload

# -- test-local brute force ----------------------------------------------------


def _min_edges(k, edges):
    """Lexicographically smallest relabelling of a local edge list."""
    best = None
    for perm in permutations(range(k)):
        mapped = tuple(sorted(tuple(sorted((perm[a], perm[b])))
                              for a, b in edges))
        if best is None or mapped < best:
            best = mapped
    return best


def _brute_census(graph, k):
    """Class (min-edge-list) → count over all connected k-subsets."""
    adj = [set(int(x) for x in graph.neighbours(u))
           for u in range(graph.num_vertices)]
    counts = {}
    for combo in combinations(range(graph.num_vertices), k):
        edges = [(i, j) for i, j in combinations(range(k), 2)
                 if combo[j] in adj[combo[i]]]
        reach, stack = {0}, [0]
        while stack:
            u = stack.pop()
            for a, b in edges:
                for x, y in ((a, b), (b, a)):
                    if x == u and y not in reach:
                        reach.add(y)
                        stack.append(y)
        if len(reach) != k:
            continue
        key = _min_edges(k, edges)
        counts[key] = counts.get(key, 0) + 1
    return counts


def _census_by_key(result):
    """CensusResult per-class counts re-keyed by canonical key."""
    return {result.class_keys[name]: count
            for name, count in result.counts.items()}


def _cluster(graph, machines=3, workers=2, seed=5):
    return Cluster(graph, num_machines=machines,
                   workers_per_machine=workers, seed=seed)


def _workload_for(graph, seed=0):
    """Wrap a bare graph as a (pattern-irrelevant) census workload."""
    return Workload(num_vertices=graph.num_vertices,
                    edges=tuple(graph.edges()), labels=None,
                    pattern_name="triangle", pattern_num_vertices=3,
                    pattern_edges=((0, 1), (1, 2), (2, 0)),
                    pattern_labels=None, seed=seed)


# -- the canonical memo --------------------------------------------------------


class TestCanonicalMemo:
    def test_agrees_with_canonical_key(self):
        memo = CanonicalMemo()
        for pattern in connected_patterns(4):
            assert memo.key_of(pattern) == pattern.canonical_key()

    def test_relabelled_encodings_all_hit(self):
        memo = CanonicalMemo()
        rows = (0b0110, 0b1001, 0b0001, 0b0110)  # a 4-path 2-0-1-3
        first = memo.key_for(4, rows)
        for perm in permutations(range(4)):
            assert memo.key_for(4, permute_bitrows(rows, perm)) == first
        assert memo.canonical_calls == 1
        assert memo.hits == 24

    def test_distinct_classes_distinct_keys(self):
        memo = CanonicalMemo()
        keys = {memo.key_of(p) for p in connected_patterns(5)}
        assert len(keys) == 21
        assert memo.canonical_calls == 21
        assert memo.classes() == keys

    def test_oversized_subgraph_rejected(self):
        n = MAX_MEMO_VERTICES + 1
        with pytest.raises(ValueError):
            CanonicalMemo().key_for(n, tuple([0] * n))

    def test_labelled_pattern_rejected(self):
        q = QueryGraph(2, [(0, 1)], labels=[0, 1])
        with pytest.raises(ValueError):
            CanonicalMemo().key_of(q)

    def test_stats_surface(self):
        memo = CanonicalMemo()
        memo.key_of(QueryGraph(3, [(0, 1), (1, 2)]))
        memo.key_of(QueryGraph(3, [(0, 2), (2, 1)]))
        stats = memo.stats()
        assert stats["canonical_calls"] == 1
        assert stats["hits"] == 1
        assert stats["classes"] == 1
        assert stats["hit_rate"] == 0.5
        assert memo.lookups == 2
        # one class closed under relabelling: 3!/|Aut| distinct encodings
        assert len(memo) == 3

    @given(data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_property_relabelling_same_key(self, data):
        """A relabelled copy always lands on the same class key, and the
        canonicaliser never runs more often than distinct classes seen."""
        memo = CanonicalMemo()
        g = data.draw(graphs(min_vertices=4, max_vertices=8, min_edges=3))
        masks = adjacency_bitsets(g)
        k = data.draw(st.integers(min_value=2, max_value=4))
        vertices = data.draw(st.permutations(range(g.num_vertices))).__iter__()
        chosen = sorted([next(vertices) for _ in range(k)])
        rows = induced_bitrows(masks, chosen)
        key = memo.key_for(k, rows)
        perm = data.draw(st.permutations(range(k)))
        assert memo.key_for(k, permute_bitrows(rows, perm)) == key
        assert memo.canonical_calls <= len(memo.classes())
        assert memo.canonical_calls == len(memo.classes())


# -- census correctness --------------------------------------------------------


class TestCensusCorrectness:
    @pytest.fixture(scope="class")
    def graph(self):
        return gen.barabasi_albert(48, 3, seed=9)

    @pytest.mark.parametrize("k", [2, 3, 4])
    def test_matches_brute_force_per_class(self, graph, k):
        brute = _brute_census(graph, k)
        res = motif_census(_cluster(graph), k)
        assert res.total_subgraphs == sum(brute.values())
        got = _census_by_key(res)
        for rep, count in brute.items():
            key = QueryGraph(k, list(rep)).canonical_key()
            assert got[key] == count
        assert sum(got.values()) == res.total_subgraphs

    def test_k5_total_and_class_sum(self):
        g = gen.barabasi_albert(24, 2, seed=4)
        brute = _brute_census(g, 5)
        res = motif_census(_cluster(g), 5)
        assert res.total_subgraphs == sum(brute.values())
        assert sum(res.counts.values()) == res.total_subgraphs
        assert len([c for c in res.counts.values() if c]) == len(brute)

    @pytest.mark.parametrize("k", [3, 4])
    def test_automorphism_identity(self, k):
        """Brute labelled-embedding counts divide by |Aut| exactly:
        labelled(class) == census(class) × automorphism_count(class)."""
        g = gen.barabasi_albert(12, 2, seed=8)
        adj = [set(int(x) for x in g.neighbours(u))
               for u in range(g.num_vertices)]
        res = motif_census(_cluster(g), k)
        for name, count in res.counts.items():
            pattern = next(p for p in connected_patterns(k)
                           if p.name == name)
            eset = {frozenset(e) for e in pattern.edges}
            labelled = 0
            for image in permutations(range(g.num_vertices), k):
                if all((image[b] in adj[image[a]]) == (
                        frozenset((a, b)) in eset)
                       for a, b in combinations(range(k), 2)):
                    labelled += 1
            aut = automorphism_count(pattern)
            assert labelled == count * aut
            assert labelled % aut == 0

    def test_every_class_reported_even_when_absent(self):
        g = Graph.from_edges([(0, 1), (1, 2), (2, 3)])  # a bare path
        res = motif_census(_cluster(g, machines=2), 4)
        assert len(res.counts) == 6
        assert sorted(res.counts.values()) == [0, 0, 0, 0, 0, 1]
        path_key = QueryGraph(4, [(0, 1), (1, 2), (2, 3)]).canonical_key()
        (hit,) = [name for name, c in res.counts.items() if c == 1]
        assert res.class_keys[hit] == path_key  # the path itself

    def test_graph_smaller_than_k(self):
        g = Graph.from_edges([(0, 1), (1, 2)])
        res = motif_census(_cluster(g, machines=2), 5)
        assert res.total_subgraphs == 0
        assert res.canonical_calls == 0
        assert res.memo_hits == 0

    def test_invalid_k(self):
        g = Graph.from_edges([(0, 1)])
        with pytest.raises(ValueError):
            motif_census(_cluster(g, machines=1), 1)
        with pytest.raises(ValueError):
            motif_census(_cluster(g, machines=1), 6)

    def test_partitioning_invariance(self):
        """The census is a property of the graph, not the cluster shape."""
        g = gen.barabasi_albert(40, 2, seed=3)
        a = motif_census(_cluster(g, machines=2, workers=1, seed=1), 3)
        b = motif_census(_cluster(g, machines=5, workers=3, seed=13), 3)
        assert a.counts == b.counts
        assert a.total_subgraphs == b.total_subgraphs

    def test_simulated_report_is_populated(self):
        g = gen.barabasi_albert(40, 2, seed=3)
        res = motif_census(_cluster(g), 3)
        assert res.report.total_time_s > 0
        assert res.report.bytes_transferred > 0  # remote rows were pulled
        assert res.report.mem_underflows == 0

    @given(data=st.data())
    @settings(max_examples=25, deadline=None)
    def test_property_census_matches_brute(self, data):
        g = data.draw(graphs(min_vertices=4, max_vertices=10, min_edges=3))
        k = data.draw(st.integers(min_value=2, max_value=4))
        brute = _brute_census(g, k)
        res = motif_census(_cluster(g, machines=2), k)
        assert res.total_subgraphs == sum(brute.values())
        got = _census_by_key(res)
        assert {QueryGraph(k, list(rep)).canonical_key(): c
                for rep, c in brute.items()} == \
            {key: c for key, c in got.items() if c}


# -- the once-per-class memo guarantee -----------------------------------------


class TestMemoGuarantee:
    def test_canonicaliser_runs_once_per_class(self, monkeypatch):
        """Count actual ``QueryGraph.canonical_key`` invocations during a
        census: exactly one per isomorphism class enumerated."""
        g = gen.barabasi_albert(40, 3, seed=7)
        k = 4
        connected_patterns(k)  # pre-warm the lru caches outside the count
        motif_census(_cluster(g), k)
        calls = []
        real = QueryGraph.canonical_key

        def counted(self):
            calls.append(self)
            return real(self)

        monkeypatch.setattr(QueryGraph, "canonical_key", counted)
        res = motif_census(_cluster(g), k)
        classes_seen = sum(1 for c in res.counts.values() if c)
        assert len(calls) == classes_seen
        assert res.canonical_calls == classes_seen
        assert res.memo_hits == res.total_subgraphs - classes_seen
        assert 0 < res.memo_hit_rate < 1

    def test_shared_memo_second_run_all_hits(self):
        g = gen.barabasi_albert(30, 2, seed=2)
        memo = CanonicalMemo()
        first = motif_census(_cluster(g), 3, memo=memo)
        second = motif_census(_cluster(g), 3, memo=memo)
        assert first.canonical_calls > 0
        assert second.canonical_calls == 0  # classes already closed
        assert second.memo_hits == second.total_subgraphs
        assert second.counts == first.counts

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=20, deadline=None)
    def test_property_calls_bounded_by_classes(self, seed):
        w = random_workload(seed, max_vertices=10)
        memo = CanonicalMemo()
        res = motif_census(
            Cluster(w.graph(), num_machines=w.num_machines,
                    workers_per_machine=w.workers_per_machine,
                    seed=w.partition_seed), 3, memo=memo)
        distinct = sum(1 for c in res.counts.values() if c)
        assert res.canonical_calls == distinct
        assert memo.canonical_calls <= len(connected_patterns(3))


# -- the conformance family ----------------------------------------------------


class TestCensusConformance:
    def test_family_in_full_matrix(self):
        names = {s.name for s in default_matrix()}
        assert {"census-k3", "census-k4", "census-k5"} <= names

    @pytest.mark.parametrize("spec", census_matrix(),
                             ids=lambda s: s.name)
    def test_specs_pass_on_random_workloads(self, spec):
        for seed in (11, 12):
            outcome = run_case(random_workload(seed, max_vertices=11), spec)
            assert outcome.ok, [str(f) for f in outcome.failures]
            assert outcome.census_counts is not None

    def test_reference_matches_census(self):
        g = gen.barabasi_albert(20, 2, seed=6)
        w = _workload_for(g)
        ref = compute_census_reference(w, 3)
        res = motif_census(_cluster(g), 3)
        assert ref.total == res.total_subgraphs
        assert ref.labelled_counts is not None

    def test_reference_budget_gates_labelled_sweep(self):
        g = gen.barabasi_albert(60, 2, seed=6)  # C(60,5)·5! >> budget
        ref = compute_census_reference(_workload_for(g), 5)
        assert ref.labelled_counts is None
        assert ref.total > 0

    def _good_outcome(self, workload, spec):
        outcome = run_case(workload, spec)
        assert outcome.ok
        return outcome

    def test_oracle_catches_wrong_total(self):
        w = random_workload(21, max_vertices=10)
        spec = census_matrix()[0]
        outcome = self._good_outcome(w, spec)
        outcome.census_total += 1
        bad = check_census_case(w, spec, outcome)
        assert any(f.oracle == "census-total" for f in bad)

    def test_oracle_catches_wrong_class_count(self):
        w = random_workload(21, max_vertices=10)
        spec = census_matrix()[0]
        outcome = self._good_outcome(w, spec)
        name = max(outcome.census_counts, key=outcome.census_counts.get)
        outcome.census_counts[name] -= 1
        outcome.census_total -= 1
        bad = check_census_case(w, spec, outcome)
        assert any(f.oracle == "census-classes" for f in bad)

    def test_oracle_catches_memo_violation(self):
        w = random_workload(21, max_vertices=10)
        spec = census_matrix()[0]
        outcome = self._good_outcome(w, spec)
        outcome.census_canon_calls += 1  # "canonicalised twice" somewhere
        bad = check_census_case(w, spec, outcome)
        assert any(f.oracle == "census-memo" for f in bad)

    def test_oracle_reports_crash_first(self):
        w = random_workload(21, max_vertices=10)
        spec = census_matrix()[0]
        outcome = CaseOutcome(spec_name=spec.name, error="Boom: crashed")
        bad = check_census_case(w, spec, outcome)
        assert [f.oracle for f in bad] == ["error"]
