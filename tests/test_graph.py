"""Unit tests for the CSR graph (repro.graph.graph)."""

import numpy as np
import pytest

from repro.graph import Graph, GraphBuilder
from repro.graph import generators as gen


class TestConstruction:
    def test_from_edges_basic(self):
        g = Graph.from_edges([(0, 1), (1, 2)])
        assert g.num_vertices == 3
        assert g.num_edges == 2

    def test_from_edges_dedups(self):
        g = Graph.from_edges([(0, 1), (1, 0), (0, 1)])
        assert g.num_edges == 1

    def test_from_edges_drops_self_loops(self):
        g = Graph.from_edges([(0, 0), (0, 1)])
        assert g.num_edges == 1
        assert not g.has_edge(0, 0)

    def test_from_edges_num_vertices_override(self):
        g = Graph.from_edges([(0, 1)], num_vertices=10)
        assert g.num_vertices == 10
        assert g.degree(9) == 0

    def test_from_edges_num_vertices_too_small(self):
        with pytest.raises(ValueError):
            Graph.from_edges([(0, 5)], num_vertices=3)

    def test_empty(self):
        g = Graph.empty(5)
        assert g.num_vertices == 5
        assert g.num_edges == 0

    def test_empty_zero(self):
        g = Graph.empty()
        assert g.num_vertices == 0
        assert list(g.edges()) == []

    def test_malformed_csr_rejected(self):
        with pytest.raises(ValueError):
            Graph(np.array([0, 2]), np.array([1]))

    def test_non_monotone_indptr_rejected(self):
        with pytest.raises(ValueError):
            Graph(np.array([0, 2, 1, 3]), np.array([1, 2, 0]))


class TestAccessors:
    def test_neighbours_sorted(self):
        g = Graph.from_edges([(2, 0), (2, 4), (2, 1)])
        assert list(g.neighbours(2)) == [0, 1, 4]

    def test_neighbours_readonly(self):
        g = Graph.from_edges([(0, 1)])
        with pytest.raises(ValueError):
            g.neighbours(0)[0] = 5

    def test_degree(self):
        g = gen.star_graph(6)
        assert g.degree(0) == 6
        assert all(g.degree(v) == 1 for v in range(1, 7))

    def test_has_edge(self):
        g = Graph.from_edges([(0, 1), (1, 2)])
        assert g.has_edge(0, 1) and g.has_edge(1, 0)
        assert not g.has_edge(0, 2)

    def test_has_edge_out_of_range(self):
        g = Graph.from_edges([(0, 1)])
        assert not g.has_edge(0, 99)
        assert not g.has_edge(-1, 0)

    def test_edges_iterates_once(self):
        g = gen.cycle_graph(5)
        edges = list(g.edges())
        assert len(edges) == 5
        assert all(u < v for u, v in edges)

    def test_len_is_vertices(self):
        assert len(gen.complete_graph(4)) == 4


class TestStatistics:
    def test_max_degree(self, ba_graph):
        assert ba_graph.max_degree == int(max(ba_graph.degrees()))

    def test_avg_degree(self):
        g = gen.cycle_graph(10)
        assert g.avg_degree == pytest.approx(2.0)

    def test_degrees_sum_is_twice_edges(self, er_graph):
        assert int(er_graph.degrees().sum()) == 2 * er_graph.num_edges

    def test_empty_graph_stats(self):
        g = Graph.empty(0)
        assert g.max_degree == 0
        assert g.avg_degree == 0.0


class TestEquality:
    def test_equal_graphs(self):
        a = Graph.from_edges([(0, 1), (1, 2)])
        b = Graph.from_edges([(1, 2), (0, 1)])
        assert a == b
        assert hash(a) == hash(b)

    def test_unequal_graphs(self):
        assert Graph.from_edges([(0, 1)]) != Graph.from_edges([(0, 1), (1, 2)])

    def test_eq_other_type(self):
        assert Graph.from_edges([(0, 1)]) != "graph"


class TestBuilder:
    def test_relabelling(self):
        b = GraphBuilder()
        b.add_edge("alice", "bob").add_edge("bob", "carol")
        g = b.build()
        assert g.num_vertices == 3
        assert g.num_edges == 2
        assert b.vertex_ids["alice"] == 0

    def test_integer_mode(self):
        b = GraphBuilder(relabel=False)
        b.add_edge(3, 7)
        g = b.build()
        assert g.num_vertices == 8
        assert g.has_edge(3, 7)

    def test_integer_mode_rejects_negative(self):
        with pytest.raises(ValueError):
            GraphBuilder(relabel=False).add_edge(-1, 2)

    def test_self_loop_ignored(self):
        b = GraphBuilder()
        b.add_edge("x", "x")
        assert b.num_edges == 0

    def test_add_vertex_isolated(self):
        b = GraphBuilder(relabel=False)
        b.add_vertex(4)
        g = b.build()
        assert g.num_vertices == 5
        assert g.num_edges == 0

    def test_add_edges_bulk(self):
        g = GraphBuilder(relabel=False).add_edges(
            [(0, 1), (1, 2), (2, 0)]).build()
        assert g.num_edges == 3
