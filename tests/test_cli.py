"""Tests for the command-line interface (python -m repro)."""

import json

import pytest

from repro.__main__ import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_query_defaults(self):
        args = build_parser().parse_args(["query", "--data", "GO"])
        args.func  # bound
        assert args.pattern == "triangle"
        assert args.machines == 4

    def test_unknown_pattern_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["query", "--data", "GO", "--pattern", "q99"])


class TestCommands:
    def test_query_counts(self, capsys):
        assert main(["query", "--data", "GO", "--pattern", "triangle",
                     "--machines", "2"]) == 0
        out = capsys.readouterr().out
        assert "matches:" in out
        assert "simulated time" in out

    def test_query_show_matches(self, capsys):
        main(["query", "--data", "GO", "--pattern", "triangle",
              "--machines", "2", "--show", "2"])
        out = capsys.readouterr().out
        assert out.count("(") >= 2

    def test_query_cypher(self, capsys):
        main(["query", "--data", "GO", "--machines", "2", "--cypher",
              "MATCH (a)--(b)--(c), (c)--(a) RETURN count(*)"])
        out = capsys.readouterr().out
        assert "matches:" in out

    def test_query_edge_list_file(self, tmp_path, capsys):
        path = tmp_path / "g.txt"
        path.write_text("0 1\n1 2\n2 0\n2 3\n")
        main(["query", "--data", str(path), "--pattern", "triangle",
              "--machines", "2"])
        assert "matches: 1" in capsys.readouterr().out

    def test_query_trace_writes_chrome_json(self, tmp_path, capsys):
        path = tmp_path / "trace.json"
        assert main(["query", "--data", "GO", "--pattern", "triangle",
                     "--machines", "2", "--trace", str(path)]) == 0
        data = json.loads(path.read_text())
        assert data["traceEvents"]
        assert any(e["ph"] == "X" for e in data["traceEvents"])
        assert "trace:" in capsys.readouterr().out

    def test_query_json_output_parses(self, capsys):
        assert main(["query", "--data", "GO", "--pattern", "triangle",
                     "--machines", "2", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["count"] > 0
        assert data["report"]["mem_underflows"] == 0

    def test_query_trace_rejected_with_cypher(self, capsys):
        assert main(["query", "--data", "GO", "--cypher",
                     "MATCH (a)--(b) RETURN count(*)",
                     "--trace", "t.json"]) == 2
        assert "not supported" in capsys.readouterr().err

    def test_explain_plain_shows_plan(self, capsys):
        assert main(["explain", "--data", "GO", "--pattern", "q1",
                     "--machines", "2"]) == 0
        out = capsys.readouterr().out
        assert "ExecutionPlan" in out
        assert "analyze" not in out

    def test_explain_analyze_annotates_actuals(self, tmp_path, capsys):
        path = tmp_path / "trace.json"
        assert main(["explain", "--data", "GO", "--pattern", "q1",
                     "--machines", "2", "--analyze",
                     "--trace", str(path)]) == 0
        out = capsys.readouterr().out
        assert "analyze (estimate vs traced run)" in out
        assert "est |R|" in out
        assert "span coverage" in out
        assert json.loads(path.read_text())["traceEvents"]

    def test_plan(self, capsys):
        main(["plan", "--data", "GO", "--pattern", "q1"])
        out = capsys.readouterr().out
        assert "ExecutionPlan" in out
        assert "symmetry order" in out

    def test_datasets(self, capsys):
        main(["datasets"])
        out = capsys.readouterr().out
        for name in ("GO", "LJ", "CW"):
            assert name in out

    def test_motifs(self, capsys):
        main(["motifs", "--data", "GO", "--k", "3", "--machines", "2"])
        out = capsys.readouterr().out
        assert "motif3-0" in out and "motif3-1" in out

    def test_census(self, capsys):
        assert main(["census", "--data", "GO", "--k", "3",
                     "--machines", "2"]) == 0
        out = capsys.readouterr().out
        assert "motif3-0" in out and "motif3-1" in out
        assert "canonical memo:" in out
        assert "simulated time" in out

    def test_census_json_and_trace(self, tmp_path, capsys):
        path = tmp_path / "census-trace.json"
        assert main(["census", "--data", "GO", "--k", "4", "--machines",
                     "2", "--json", "--trace", str(path)]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["k"] == 4
        assert sum(data["counts"].values()) == data["total_subgraphs"]
        assert data["canonical_calls"] <= 6
        assert data["memo_hit_rate"] > 0
        trace = json.loads(path.read_text())
        names = {e["name"] for e in trace["traceEvents"]}
        assert "census walk" in names

    def test_census_rejects_bad_k(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["census", "--data", "GO",
                                       "--k", "6"])


class TestMetricsCommand:
    def test_dump_passes_own_checker(self, capsys):
        from repro.obs import check_exposition

        assert main(["metrics", "--data", "GO", "--pattern", "triangle",
                     "--machines", "2"]) == 0
        out = capsys.readouterr().out
        assert check_exposition(out) == []
        assert "# TYPE repro_engine_matches_total counter" in out

    def test_check_accepts_dump(self, tmp_path, capsys):
        path = tmp_path / "m.prom"
        assert main(["metrics", "--data", "GO", "--pattern", "triangle",
                     "--machines", "2", "--out", str(path)]) == 0
        assert main(["metrics", "--check", str(path)]) == 0
        assert "exposition ok" in capsys.readouterr().out

    def test_check_rejects_malformed(self, tmp_path, capsys):
        path = tmp_path / "bad.prom"
        path.write_text("# TYPE h histogram\n"
                        'h_bucket{le="1"} 5\n'
                        'h_bucket{le="+Inf"} 5\n'
                        "h_sum 1\nh_count 7\n")
        assert main(["metrics", "--check", str(path)]) == 1
        assert "INVALID" in capsys.readouterr().out

    def test_json_snapshot(self, capsys):
        assert main(["metrics", "--data", "GO", "--pattern", "triangle",
                     "--machines", "2", "--json"]) == 0
        snap = json.loads(capsys.readouterr().out)
        assert snap["repro_engine_matches_total"]["type"] == "counter"
        assert snap["repro_engine_matches_total"]["samples"][0]["value"] > 0

    def test_query_metrics_flag(self, tmp_path, capsys):
        from repro.obs import check_exposition

        path = tmp_path / "q.prom"
        assert main(["query", "--data", "GO", "--pattern", "triangle",
                     "--machines", "2", "--metrics", str(path)]) == 0
        assert check_exposition(path.read_text()) == []

    def test_query_metrics_json_stdout_stays_parseable(self, tmp_path,
                                                       capsys):
        path = tmp_path / "q.prom"
        assert main(["query", "--data", "GO", "--pattern", "triangle",
                     "--machines", "2", "--json",
                     "--metrics", str(path)]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["count"] > 0
        assert path.exists()

    def test_query_metrics_rejected_with_cypher(self, capsys):
        assert main(["query", "--data", "GO", "--cypher",
                     "MATCH (a)--(b) RETURN count(*)",
                     "--metrics", "m.prom"]) == 2
        assert "not supported" in capsys.readouterr().err

    def test_serve_smoke_with_metrics_and_flight(self, tmp_path, capsys):
        from repro.obs import check_exposition

        mpath = tmp_path / "s.prom"
        fpath = tmp_path / "f.jsonl"
        assert main(["serve", "--data", "GO", "--smoke", "--queries", "6",
                     "--machines", "2", "--metrics", str(mpath),
                     "--flight", str(fpath)]) == 0
        out = capsys.readouterr().out
        assert "verify: all completed queries bit-identical" in out
        assert "flight recorder:" in out
        assert check_exposition(mpath.read_text()) == []
        events = [json.loads(ln) for ln in
                  fpath.read_text().splitlines()]
        assert events
        assert all("kind" in e and "seq" in e for e in events)

    def test_census_metrics_flag(self, tmp_path, capsys):
        from repro.obs import check_exposition

        path = tmp_path / "c.prom"
        assert main(["census", "--data", "GO", "--k", "3", "--machines",
                     "2", "--metrics", str(path)]) == 0
        text = path.read_text()
        assert check_exposition(text) == []
        assert "repro_census_subgraphs_total" in text


class TestStreamCommand:
    def test_stream_defaults(self):
        args = build_parser().parse_args(["stream", "--data", "GO"])
        args.func  # bound
        assert args.updates == 40 and args.batch == 8
        assert args.patterns == "triangle,q1"

    def test_stream_verify_smoke(self, capsys):
        assert main(["stream", "--data", "GO", "--smoke", "--updates", "16",
                     "--batch", "4", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "stream: " in out
        assert "verify: incremental counts bit-identical" in out

    def test_stream_json_with_metrics_and_flight(self, tmp_path, capsys):
        from repro.obs import check_exposition

        mpath = tmp_path / "st.prom"
        fpath = tmp_path / "st.jsonl"
        assert main(["stream", "--data", "GO", "--updates", "12",
                     "--batch", "4", "--verify", "--json",
                     "--metrics", str(mpath), "--flight", str(fpath)]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["verified"] is True
        assert data["stream_stats"]["stream_errors"] == 0
        assert len(data["reports"]) == data["update_batches"]
        text = mpath.read_text()
        assert check_exposition(text) == []
        assert "stream_updates_total" in text
        assert fpath.exists() and fpath.read_text().strip()
