"""Tests for the command-line interface (python -m repro)."""

import pytest

from repro.__main__ import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_query_defaults(self):
        args = build_parser().parse_args(["query", "--data", "GO"])
        args.func  # bound
        assert args.pattern == "triangle"
        assert args.machines == 4

    def test_unknown_pattern_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["query", "--data", "GO", "--pattern", "q99"])


class TestCommands:
    def test_query_counts(self, capsys):
        assert main(["query", "--data", "GO", "--pattern", "triangle",
                     "--machines", "2"]) == 0
        out = capsys.readouterr().out
        assert "matches:" in out
        assert "simulated time" in out

    def test_query_show_matches(self, capsys):
        main(["query", "--data", "GO", "--pattern", "triangle",
              "--machines", "2", "--show", "2"])
        out = capsys.readouterr().out
        assert out.count("(") >= 2

    def test_query_cypher(self, capsys):
        main(["query", "--data", "GO", "--machines", "2", "--cypher",
              "MATCH (a)--(b)--(c), (c)--(a) RETURN count(*)"])
        out = capsys.readouterr().out
        assert "matches:" in out

    def test_query_edge_list_file(self, tmp_path, capsys):
        path = tmp_path / "g.txt"
        path.write_text("0 1\n1 2\n2 0\n2 3\n")
        main(["query", "--data", str(path), "--pattern", "triangle",
              "--machines", "2"])
        assert "matches: 1" in capsys.readouterr().out

    def test_plan(self, capsys):
        main(["plan", "--data", "GO", "--pattern", "q1"])
        out = capsys.readouterr().out
        assert "ExecutionPlan" in out
        assert "symmetry order" in out

    def test_datasets(self, capsys):
        main(["datasets"])
        out = capsys.readouterr().out
        for name in ("GO", "LJ", "CW"):
            assert name in out

    def test_motifs(self, capsys):
        main(["motifs", "--data", "GO", "--k", "3", "--machines", "2"])
        out = capsys.readouterr().out
        assert "motif3-0" in out and "motif3-1" in out
