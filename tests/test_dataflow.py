"""Tests for the dataflow spec structures (repro.core.dataflow)."""

import pytest

from repro.core.dataflow import ExtendSpec, JoinSpec, ScanSpec, Segment


def scan(a=0, b=1):
    return ScanSpec(schema=(a, b))


def ext(schema_in, new):
    return ExtendSpec(ext=(0,), out_schema=tuple(schema_in) + (new,),
                      new_vertex=new)


class TestSegment:
    def test_scan_only(self):
        seg = Segment(source=scan())
        assert seg.out_schema == (0, 1)
        assert seg.num_operators == 1
        assert seg.max_arity() == 2

    def test_chain_schema_follows_extends(self):
        seg = Segment(source=scan(), extends=[ext((0, 1), 2),
                                              ext((0, 1, 2), 3)])
        assert seg.out_schema == (0, 1, 2, 3)
        assert seg.num_operators == 3
        assert seg.max_arity() == 4

    def test_join_segment_needs_children(self):
        spec = JoinSpec(left_key=(0,), right_key=(0,), right_carry=(1,),
                        out_schema=(0, 1, 2))
        with pytest.raises(ValueError):
            Segment(source=spec)

    def test_scan_segment_rejects_children(self):
        with pytest.raises(ValueError):
            Segment(source=scan(), left=Segment(source=scan()),
                    right=Segment(source=scan()))

    def test_join_tree_traversal(self):
        spec = JoinSpec(left_key=(1,), right_key=(0,), right_carry=(1,),
                        out_schema=(0, 1, 2))
        left = Segment(source=scan(0, 1))
        right = Segment(source=scan(1, 2))
        root = Segment(source=spec, left=left, right=right)
        segs = root.all_segments()
        assert segs == [left, right, root]
        assert root.total_operators() == 3

    def test_explicit_out_schema_kept(self):
        seg = Segment(source=scan(), out_schema=(1, 0))
        assert seg.out_schema == (1, 0)

    def test_extend_label_field_default(self):
        spec = ext((0, 1), 2)
        assert spec.new_label is None

    def test_scan_label_default(self):
        assert scan().labels == (None, None)

    def test_verify_flag(self):
        v = ExtendSpec(ext=(1,), out_schema=(0, 1), verify_pos=0)
        assert v.is_verify
        assert not ext((0, 1), 2).is_verify
