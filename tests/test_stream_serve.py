"""Serving-tier tests for streaming updates and standing subscriptions.

The contract under test: ``QueryService.apply_updates`` swaps in a new
immutable snapshot (bumping the dataset's graph version and invalidating
stale cached results), fans exactly one signed delta batch per standing
subscription through the worker pool for each update, and the
accumulated deliveries stay bit-identical to from-scratch enumeration
on the final graph — under both pool backends, with the metrics and
flight-recorder surfaces reflecting what happened.
"""

from __future__ import annotations

import pytest

from repro.baselines import enumerate_matches
from repro.graph import generators as gen
from repro.graph import temporal_edge_stream
from repro.obs import FlightRecorder, MetricsRegistry, check_exposition
from repro.query import get_query
from repro.serve import (QueryRequest, QueryService, QueryStatus,
                         SubscribeRequest)

TRIANGLE = get_query("triangle")


def brute_count(graph, pattern):
    return sum(1 for _ in enumerate_matches(graph, pattern))


@pytest.fixture()
def service(er_graph):
    svc = QueryService(datasets={"er": er_graph}, num_workers=2,
                       backoff_base_s=0.01).start()
    yield svc
    svc.stop()


def test_subscribe_then_update_delivers_signed_deltas(service, er_graph):
    sub = service.subscribe(SubscribeRequest(pattern="triangle",
                                             dataset="er", bootstrap=True))
    boot = sub.poll(timeout=5.0)
    assert boot is not None and boot.seq == 0
    assert len(boot.additions) == brute_count(er_graph, TRIANGLE)
    assert sub.count == len(boot.additions)

    # drop one edge that carries at least one triangle
    victim = next(tuple(m[:2]) for m in boot.additions)
    victim = (min(victim), max(victim))
    report = service.apply_updates("er", deletes=[victim])
    assert report.version == 1 and not report.timed_out
    assert len(report.batches) == 1
    batch = sub.poll(timeout=5.0)
    assert batch is not None and batch.seq == 1
    assert batch.deleted == (victim,)
    assert len(batch.retractions) >= 1 and batch.additions == ()
    assert batch.error is None
    assert sub.count == boot.count_after + batch.net
    assert sub.count == brute_count(service._graphs["er"], TRIANGLE)
    assert sub.delivery_violations == 0
    service.unsubscribe(sub)
    assert not sub.active


def test_stream_accumulates_to_scratch_over_updates(service, er_graph):
    stream = temporal_edge_stream(er_graph, 30, batch_size=6, seed=21,
                                  delete_fraction=0.4)
    service.register_dataset("live", stream.base)
    sub = service.subscribe(SubscribeRequest(pattern="triangle",
                                             dataset="live", bootstrap=True))
    assert sub.poll(timeout=5.0) is not None
    seen = set()
    for batch in stream.batches:
        report = service.apply_updates("live", batch.inserts, batch.deletes)
        assert not report.timed_out
        delivered = sub.poll(timeout=5.0)
        assert delivered is not None
        # exactly-once: every delivery carries a fresh graph version
        assert delivered.seq == report.version
        assert delivered.seq not in seen
        seen.add(delivered.seq)
    assert sub.count == brute_count(stream.final_graph(), TRIANGLE)
    assert sub.delivery_violations == 0
    assert service.stream_stats()["stream_updates"] == len(stream.batches)


def test_update_without_subscribers_still_swaps_snapshot(service, er_graph):
    report = service.apply_updates("er", inserts=[(0, 1)], deletes=[])
    assert report.batches == ()
    assert service.graph_version("er") == 1


def test_update_fans_out_to_every_subscription(service):
    g = gen.erdos_renyi(25, 0.25, seed=31)
    service.register_dataset("fan", g)
    subs = [service.subscribe(SubscribeRequest(pattern=p, dataset="fan"))
            for p in ("triangle", "q1", "q6")]
    report = service.apply_updates("fan", deletes=[next(iter(g.edges()))])
    assert len(report.batches) == 3
    for sub in subs:
        batch = sub.poll(timeout=5.0)
        assert batch is not None and batch.seq == report.version
        # no bootstrap: the standing count tracks deltas only, and the
        # batch's net must equal the from-scratch difference
        want_net = (brute_count(service._graphs["fan"], sub.pattern)
                    - brute_count(g, sub.pattern))
        assert batch.net == want_net == sub.count


def test_stale_result_cache_invalidated_by_update(er_graph):
    svc = QueryService(datasets={"er": er_graph}, num_workers=2,
                       backoff_base_s=0.01,
                       result_cache_bytes=1 << 20).start()
    try:
        def run():
            h = svc.submit(QueryRequest(pattern="triangle", dataset="er"))
            out = h.result(timeout=30.0)
            assert out.status is QueryStatus.COMPLETED
            return out

        first = run()
        cached = run()
        assert cached.result_cache_hit and cached.count == first.count

        # mutate the graph: the cached answer must NOT be served again
        victim = sorted(er_graph.edges())[0]
        svc.apply_updates("er", deletes=[victim])
        fresh = run()
        assert not fresh.result_cache_hit
        assert fresh.count == brute_count(svc._graphs["er"], TRIANGLE)
        assert fresh.count != first.count or first.count == 0
    finally:
        svc.stop()


def test_register_dataset_bumps_version_and_drops_cache(service, er_graph):
    assert service.graph_version("er") == 0
    service.register_dataset("er", er_graph)
    assert service.graph_version("er") == 1
    service.register_dataset("brand-new", er_graph)
    assert service.graph_version("brand-new") == 0


def test_metrics_and_flight_surfaces(er_graph):
    registry = MetricsRegistry()
    flight = FlightRecorder()
    svc = QueryService(datasets={"er": er_graph}, num_workers=2,
                       backoff_base_s=0.01, metrics=registry,
                       flight=flight).start()
    try:
        sub = svc.subscribe(SubscribeRequest(pattern="triangle",
                                             dataset="er", bootstrap=True))
        assert sub.poll(timeout=5.0) is not None
        victim = sorted(er_graph.edges())[0]
        svc.apply_updates("er", deletes=[victim])
        assert sub.poll(timeout=5.0) is not None
        svc.unsubscribe(sub)

        text = registry.expose()
        assert check_exposition(text) == []
        assert 'stream_updates_total{dataset="er"} 1' in text
        assert "stream_deltas_emitted_total" in text
        assert "stream_batch_latency" in text
        assert "stream_subscriptions" in text

        flights = {f.label: f for f in flight.flights()}
        rec = flights[sub.request.label]
        kinds = [e.kind for e in rec.events]
        assert "subscribed" in kinds and "bootstrapped" in kinds
        assert "delta_batch" in kinds and "delivered" in kinds
        assert rec.status == "unsubscribed"
    finally:
        svc.stop()


def test_stop_closes_active_subscriptions(er_graph):
    svc = QueryService(datasets={"er": er_graph}, num_workers=2,
                       backoff_base_s=0.01).start()
    sub = svc.subscribe(SubscribeRequest(pattern="triangle", dataset="er"))
    svc.stop()
    assert not sub.active
    assert sub.poll(timeout=0.5) is None  # sentinel, no batch


def test_subscribe_rejected_when_not_started(er_graph):
    svc = QueryService(datasets={"er": er_graph}, num_workers=1)
    with pytest.raises(RuntimeError):
        svc.subscribe(SubscribeRequest(pattern="triangle", dataset="er"))
    with pytest.raises(RuntimeError):
        svc.apply_updates("er", inserts=[(0, 1)])


def test_updates_with_process_pool_backend(er_graph):
    svc = QueryService(datasets={"er": er_graph}, num_workers=2,
                       backoff_base_s=0.01, pool="process").start()
    try:
        sub = svc.subscribe(SubscribeRequest(pattern="triangle",
                                             dataset="er", bootstrap=True))
        assert sub.poll(timeout=10.0) is not None
        victim = sorted(er_graph.edges())[0]
        svc.apply_updates("er", deletes=[victim])
        batch = sub.poll(timeout=10.0)
        assert batch is not None and batch.error is None
        assert sub.count == brute_count(svc._graphs["er"], TRIANGLE)

        # queries against the updated dataset see the new snapshot
        h = svc.submit(QueryRequest(pattern="triangle", dataset="er"))
        out = h.result(timeout=60.0)
        assert out.status is QueryStatus.COMPLETED
        assert out.count == sub.count
    finally:
        svc.stop()


def test_queries_and_updates_interleave(service, er_graph):
    sub = service.subscribe(SubscribeRequest(pattern="triangle",
                                             dataset="er", bootstrap=True))
    assert sub.poll(timeout=5.0) is not None
    edges = sorted(er_graph.edges())
    for i in range(3):
        service.apply_updates("er", deletes=[edges[i]])
        batch = sub.poll(timeout=5.0)
        assert batch is not None
        h = service.submit(QueryRequest(pattern="triangle", dataset="er"))
        out = h.result(timeout=30.0)
        assert out.status is QueryStatus.COMPLETED
        assert out.count == sub.count == brute_count(
            service._graphs["er"], TRIANGLE)
    assert service.stream_stats()["subscriptions_active"] == 1
