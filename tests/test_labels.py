"""Tests for labelled-graph support (paper §2 footnote 3)."""

import numpy as np
import pytest

from repro.baselines import BenuEngine, count_matches
from repro.cluster import Cluster
from repro.core import EngineConfig, HugeEngine
from repro.graph import generators as gen
from repro.query import QueryGraph, automorphism_count, symmetry_break


@pytest.fixture(scope="module")
def lgraph():
    return gen.erdos_renyi(40, 0.25, seed=9)


@pytest.fixture(scope="module")
def vlabels(lgraph):
    rng = np.random.default_rng(4)
    return rng.integers(0, 3, lgraph.num_vertices)


@pytest.fixture()
def lcluster(lgraph, vlabels):
    return Cluster(lgraph, num_machines=4, labels=vlabels, seed=1)


class TestLabelledPatterns:
    def test_labels_default_to_wildcards(self):
        q = QueryGraph(3, [(0, 1), (1, 2)])
        assert q.labels == (None, None, None)
        assert not q.is_labelled

    def test_labels_length_checked(self):
        with pytest.raises(ValueError):
            QueryGraph(3, [(0, 1), (1, 2)], labels=[0])

    def test_labels_in_equality(self):
        a = QueryGraph(2, [(0, 1)], labels=[0, 1])
        b = QueryGraph(2, [(0, 1)], labels=[1, 0])
        c = QueryGraph(2, [(0, 1)])
        assert a != b and a != c
        assert hash(a) != hash(c) or a != c

    def test_relabel_carries_labels(self):
        q = QueryGraph(3, [(0, 1), (1, 2)], labels=[5, None, 7])
        r = q.relabel({0: 2, 1: 1, 2: 0})
        assert r.labels == (7, None, 5)

    def test_labels_break_symmetry(self):
        # an unlabelled edge has Aut order 2; distinct labels kill it
        plain = QueryGraph(2, [(0, 1)])
        tagged = QueryGraph(2, [(0, 1)], labels=[0, 1])
        assert automorphism_count(plain) == 2
        assert automorphism_count(tagged) == 1
        assert symmetry_break(tagged) == frozenset()

    def test_same_labels_keep_symmetry(self):
        tagged = QueryGraph(2, [(0, 1)], labels=[3, 3])
        assert automorphism_count(tagged) == 2


class TestLabelledReference:
    def test_labelled_needs_label_array(self, lgraph):
        q = QueryGraph(2, [(0, 1)], labels=[0, 1])
        with pytest.raises(ValueError):
            count_matches(lgraph, q)

    def test_label_filtering(self, lgraph, vlabels):
        q = QueryGraph(2, [(0, 1)], labels=[0, 1])
        count = count_matches(lgraph, q, labels=vlabels)
        expect = sum(1 for u, v in lgraph.edges()
                     if {vlabels[u], vlabels[v]} == {0, 1})
        assert count == expect

    def test_wildcards_match_everything(self, lgraph, vlabels):
        q = QueryGraph(2, [(0, 1)])
        assert count_matches(lgraph, q, labels=vlabels) == lgraph.num_edges


class TestLabelledEngine:
    @pytest.mark.parametrize("labels", [
        (0, 1, 2), (0, 0, 1), (None, 1, None), (2, 2, 2),
    ])
    def test_labelled_triangles(self, lcluster, lgraph, vlabels, labels):
        q = QueryGraph(3, [(0, 1), (1, 2), (0, 2)], labels=labels)
        result = HugeEngine(lcluster).run(q)
        assert result.count == count_matches(lgraph, q, labels=vlabels)

    def test_labelled_square(self, lcluster, lgraph, vlabels):
        q = QueryGraph(4, [(0, 1), (1, 2), (2, 3), (3, 0)],
                       labels=(0, None, 1, None))
        result = HugeEngine(lcluster).run(q)
        assert result.count == count_matches(lgraph, q, labels=vlabels)

    def test_collected_matches_respect_labels(self, lcluster, vlabels):
        q = QueryGraph(3, [(0, 1), (1, 2)], labels=(2, None, 0))
        cfg = EngineConfig(collect_results=True)
        result = HugeEngine(lcluster, cfg).run(q)
        for f in result.matches:
            assert vlabels[f[0]] == 2 and vlabels[f[2]] == 0

    def test_unlabelled_cluster_ignores_constraints_check(self, lgraph):
        # a labelled query on an unlabelled cluster: the engine has no
        # label array, so constraints cannot be applied — vertices match
        # everything (documented wildcard fallback)
        cl = Cluster(lgraph, num_machines=2, seed=1)
        q = QueryGraph(2, [(0, 1)], labels=[0, 1])
        assert HugeEngine(cl).run(q).count > 0

    def test_cluster_label_validation(self, lgraph):
        with pytest.raises(ValueError):
            Cluster(lgraph, num_machines=2, labels=np.zeros(3))

    def test_label_of(self, lcluster, vlabels):
        assert lcluster.label_of(5) == int(vlabels[5])

    def test_baselines_reject_labelled(self, lcluster):
        q = QueryGraph(3, [(0, 1), (1, 2), (0, 2)], labels=(0, 1, 2))
        with pytest.raises(NotImplementedError):
            BenuEngine(lcluster).run(q)


class TestCypher:
    from repro.apps import CypherError, parse_cypher

    LABELS = {"User": 0, "Item": 1, "Tag": 2}

    def test_parse_triangle(self):
        from repro.apps import parse_cypher

        q = parse_cypher("MATCH (a)--(b)--(c), (c)--(a) RETURN count(*)")
        assert q.pattern.num_vertices == 3
        assert q.pattern.num_edges == 3
        assert q.returns is None

    def test_parse_labels(self):
        from repro.apps import parse_cypher

        q = parse_cypher("MATCH (a:User)--(b:Item) RETURN a",
                         label_ids=self.LABELS)
        assert q.pattern.labels == (0, 1)
        assert q.returns == ("a",)

    def test_directions_and_types_accepted(self):
        from repro.apps import parse_cypher

        q = parse_cypher(
            "MATCH (a)-[:KNOWS]->(b)<--(c), (a)-[]-(c) RETURN count(*)")
        assert q.pattern.num_edges == 3

    def test_unknown_label_rejected(self):
        from repro.apps import CypherError, parse_cypher

        with pytest.raises(CypherError):
            parse_cypher("MATCH (a:Ghost)--(b) RETURN count(*)",
                         label_ids=self.LABELS)

    def test_conflicting_labels_rejected(self):
        from repro.apps import CypherError, parse_cypher

        with pytest.raises(CypherError):
            parse_cypher("MATCH (a:User)--(b), (a:Item)--(b) "
                         "RETURN count(*)", label_ids=self.LABELS)

    def test_unbound_return_rejected(self):
        from repro.apps import CypherError, parse_cypher

        with pytest.raises(CypherError):
            parse_cypher("MATCH (a)--(b) RETURN z")

    def test_missing_match_rejected(self):
        from repro.apps import CypherError, parse_cypher

        with pytest.raises(CypherError):
            parse_cypher("SELECT * FROM graphs")

    def test_self_relationship_rejected(self):
        from repro.apps import CypherError, parse_cypher

        with pytest.raises(CypherError):
            parse_cypher("MATCH (a)--(a) RETURN count(*)")

    def test_disconnected_rejected(self):
        from repro.apps import CypherError, parse_cypher

        with pytest.raises(CypherError):
            parse_cypher("MATCH (a)--(b), (c)--(d) RETURN count(*)")

    def test_execute_count(self, lcluster, lgraph):
        from repro.apps import execute_cypher
        from repro.query import get_query

        r = execute_cypher(
            lcluster, "MATCH (a)--(b)--(c), (c)--(a) RETURN count(*)")
        assert r.count == count_matches(lgraph, get_query("triangle"))

    def test_execute_projection(self, lcluster, lgraph, vlabels):
        from repro.apps import execute_cypher

        r = execute_cypher(lcluster,
                           "MATCH (x:User)--(y:Item) RETURN y, x",
                           label_ids=self.LABELS)
        assert r.columns == ("y", "x")
        assert len(r.rows) == r.count
        for y, x in r.rows:
            assert vlabels[x] == 0 and vlabels[y] == 1
            assert lgraph.has_edge(x, y)
