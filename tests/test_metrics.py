"""Tests for the labelled metrics registry (repro.obs.metrics): family
semantics, Prometheus text exposition, the self-contained exposition
checker, log-scaled buckets, reservoir determinism, and thread safety."""

from __future__ import annotations

import json
import math
import threading

import pytest

from repro.obs import (DEFAULT_SIZE_BUCKETS, DEFAULT_TIME_BUCKETS, Counter,
                       Histogram, MetricsRegistry, check_exposition,
                       log_buckets)


class TestLogBuckets:
    def test_spans_requested_range(self):
        bs = log_buckets(1e-6, 1e3, per_decade=3)
        assert bs[0] == 1e-6
        assert bs[-1] >= 1e3
        assert list(bs) == sorted(bs)

    def test_three_per_decade(self):
        bs = log_buckets(1.0, 1000.0, per_decade=3)
        # exactly 3 bounds per decade: 1, ~2.15, ~4.64, 10, ...
        assert len([b for b in bs if b <= 10.0]) == 4

    def test_deterministic_across_calls(self):
        assert log_buckets(1e-6, 1e3) == log_buckets(1e-6, 1e3)

    def test_defaults_cover_engine_scales(self):
        assert DEFAULT_TIME_BUCKETS[0] == 1e-6
        assert DEFAULT_TIME_BUCKETS[-1] >= 1e3
        assert DEFAULT_SIZE_BUCKETS[0] == 1.0
        assert DEFAULT_SIZE_BUCKETS[-1] >= 1e9

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            log_buckets(0.0, 10.0)
        with pytest.raises(ValueError):
            log_buckets(10.0, 1.0)


class TestRegistrySemantics:
    def test_namespace_prefix(self):
        reg = MetricsRegistry(namespace="x")
        c = reg.counter("events_total", "help")
        assert c.name == "x_events_total"

    def test_get_or_create_returns_same_family(self):
        reg = MetricsRegistry()
        a = reg.counter("dup_total", "h", ("k",))
        b = reg.counter("dup_total", "h", ("k",))
        assert a is b

    def test_type_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("thing_total")
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("thing_total")

    def test_label_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("thing_total", labelnames=("a",))
        with pytest.raises(ValueError, match="already registered"):
            reg.counter("thing_total", labelnames=("b",))

    def test_invalid_names_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter("bad-name")
        with pytest.raises(ValueError):
            reg.counter("ok_total", labelnames=("bad-label",))
        with pytest.raises(ValueError):
            reg.counter("ok_total", labelnames=("__reserved",))

    def test_time_base_validated_and_surfaced(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError, match="time_base"):
            reg.histogram("h_seconds", time_base="lunar")
        h = reg.histogram("h_seconds", "engine time", time_base="sim")
        h.observe(0.5)
        text = reg.expose()
        assert "[sim clock]" in text
        snap = reg.snapshot()
        assert snap["repro_h_seconds"]["time_base"] == "sim"


class TestCounterGauge:
    def test_counter_monotone(self):
        reg = MetricsRegistry()
        c = reg.counter("c_total")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5
        with pytest.raises(ValueError, match="only go up"):
            c.inc(-1)

    def test_labelled_counter_children_independent(self):
        reg = MetricsRegistry()
        c = reg.counter("c_total", labelnames=("tenant",))
        c.labels("a").value  # creation only
        c.inc_child(c.labels("a"), 2)
        c.inc_child(c.labels(tenant="b"))
        assert c.get("a") == 2
        assert c.get("b") == 1

    def test_unlabelled_access_on_labelled_family_raises(self):
        reg = MetricsRegistry()
        c = reg.counter("c_total", labelnames=("k",))
        with pytest.raises(ValueError, match="labelled"):
            c.inc()

    def test_gauge_up_down(self):
        reg = MetricsRegistry()
        g = reg.gauge("g")
        g.set(5)
        g.dec(2)
        assert g.value == 3
        g.inc(0.5)
        assert g.value == 3.5


class TestHistogram:
    def test_bucket_counts_cumulative_in_exposition(self):
        reg = MetricsRegistry()
        h = reg.histogram("h", buckets=(1.0, 10.0, 100.0))
        for v in (0.5, 5.0, 50.0, 500.0):
            h.observe(v)
        text = reg.expose()
        assert 'repro_h_bucket{le="1"} 1' in text
        assert 'repro_h_bucket{le="10"} 2' in text
        assert 'repro_h_bucket{le="100"} 3' in text
        assert 'repro_h_bucket{le="+Inf"} 4' in text
        assert "repro_h_count 4" in text
        assert "repro_h_sum 555.5" in text

    def test_boundary_value_lands_in_its_bucket(self):
        # le is inclusive: an observation equal to a bound counts there
        reg = MetricsRegistry()
        h = reg.histogram("h", buckets=(1.0, 10.0))
        h.observe(1.0)
        assert 'repro_h_bucket{le="1"} 1' in reg.expose()

    def test_buckets_must_ascend(self):
        with pytest.raises(ValueError, match="ascending"):
            Histogram("h", buckets=(1.0, 1.0, 2.0))

    def test_reservoir_round_robin_deterministic(self):
        """Stream sample i lands in slot (i+1) % cap once full — the exact
        policy LatencyRecorder has always used, so retention (and hence
        snapshot percentiles) is reproducible."""
        reg = MetricsRegistry()
        h = reg.histogram("h", reservoir=4)
        for v in range(10):
            h.observe(float(v))
        child = h._default()
        # replay the policy by hand
        expect = [None] * 4
        count = 0
        for v in range(10):
            count += 1
            if count <= 4:
                expect[count - 1] = float(v)
            else:
                expect[count % 4] = float(v)
        assert child.samples == expect
        assert child.count == 10

    def test_percentile_exact_from_reservoir(self):
        reg = MetricsRegistry()
        h = reg.histogram("h", reservoir=100)
        for v in (1.0, 2.0, 3.0, 4.0):
            h.observe(v)
        assert h.percentile(0) == 1.0
        assert h.percentile(100) == 4.0
        assert h.percentile(50) == 2.5

    def test_percentile_interpolates_from_buckets(self):
        reg = MetricsRegistry()
        h = reg.histogram("h", buckets=(1.0, 2.0, 4.0))  # no reservoir
        for v in (0.5, 1.5, 3.0, 3.5):
            h.observe(v)
        p = h.percentile(50)
        assert 1.0 <= p <= 2.0
        assert h.percentile(100) >= 2.0
        assert h.percentile(0) == 0.0

    def test_empty_percentile_is_zero(self):
        reg = MetricsRegistry()
        h = reg.histogram("h")
        assert h.percentile(50) == 0.0


class TestExposition:
    def _populated(self) -> MetricsRegistry:
        reg = MetricsRegistry()
        c = reg.counter("ops_total", "operations", ("op", "result"))
        c.inc_child(c.labels("scan", "ok"), 3)
        c.inc_child(c.labels("join", "err"))
        reg.gauge("depth", "queue depth").set(7)
        h = reg.histogram("lat_seconds", "latency", time_base="wall",
                          reservoir=8)
        for v in (0.001, 0.01, 0.1):
            h.observe(v)
        return reg

    def test_own_output_passes_checker(self):
        assert check_exposition(self._populated().expose()) == []

    def test_help_and_type_lines_present(self):
        text = self._populated().expose()
        assert "# HELP repro_ops_total operations" in text
        assert "# TYPE repro_ops_total counter" in text
        assert "# TYPE repro_depth gauge" in text
        assert "# TYPE repro_lat_seconds histogram" in text

    def test_label_escaping(self):
        reg = MetricsRegistry()
        c = reg.counter("c_total", labelnames=("k",))
        c.inc_child(c.labels('we"ird\\va\nlue'))
        text = reg.expose()
        assert '\\"' in text and "\\\\" in text and "\\n" in text
        assert check_exposition(text) == []

    def test_json_snapshot_round_trips(self, tmp_path):
        reg = self._populated()
        path = tmp_path / "m.json"
        reg.save_json(str(path))
        snap = json.loads(path.read_text())
        assert snap["repro_ops_total"]["type"] == "counter"
        labels = [s["labels"] for s in snap["repro_ops_total"]["samples"]]
        assert {"op": "scan", "result": "ok"} in labels
        hist = snap["repro_lat_seconds"]["samples"][0]
        assert hist["count"] == 3
        assert sum(hist["buckets"]) == 3

    def test_exposition_sorted_and_stable(self):
        a, b = self._populated(), self._populated()
        assert a.expose() == b.expose()


class TestChecker:
    def test_rejects_sample_before_type(self):
        errs = check_exposition("foo_total 3\n# TYPE foo_total counter\n")
        assert any("precedes its TYPE" in e for e in errs)

    def test_rejects_negative_counter(self):
        errs = check_exposition("# TYPE c_total counter\nc_total -1\n")
        assert any("counter" in e for e in errs)

    def test_rejects_bad_value(self):
        errs = check_exposition("# TYPE g gauge\ng not_a_number\n")
        assert any("bad sample value" in e for e in errs)

    def test_rejects_malformed_labels(self):
        errs = check_exposition('# TYPE g gauge\ng{k="unterminated} 1\n')
        assert errs

    def test_rejects_non_cumulative_histogram(self):
        text = ("# TYPE h histogram\n"
                'h_bucket{le="1"} 5\n'
                'h_bucket{le="2"} 3\n'
                'h_bucket{le="+Inf"} 5\n'
                "h_sum 4\nh_count 5\n")
        errs = check_exposition(text)
        assert any("cumulative" in e for e in errs)

    def test_rejects_missing_inf_bucket(self):
        text = ("# TYPE h histogram\n"
                'h_bucket{le="1"} 5\n'
                "h_sum 4\nh_count 5\n")
        errs = check_exposition(text)
        assert any("+Inf" in e for e in errs)

    def test_rejects_inf_bucket_count_mismatch(self):
        text = ("# TYPE h histogram\n"
                'h_bucket{le="1"} 5\n'
                'h_bucket{le="+Inf"} 5\n'
                "h_sum 4\nh_count 6\n")
        errs = check_exposition(text)
        assert any("_count" in e for e in errs)

    def test_rejects_unknown_type(self):
        errs = check_exposition("# TYPE x flavour\n")
        assert any("unknown metric type" in e for e in errs)

    def test_accepts_inf_and_nan_values(self):
        errs = check_exposition("# TYPE g gauge\n# TYPE g2 gauge\n"
                                "g +Inf\ng2 NaN\n")
        assert errs == []


class TestThreadSafety:
    def test_concurrent_increments_all_land(self):
        reg = MetricsRegistry()
        c = reg.counter("c_total", labelnames=("t",))
        h = reg.histogram("h", reservoir=64)
        n, threads = 500, 8

        def work(tid: int) -> None:
            child = c.labels(str(tid % 2))
            for i in range(n):
                c.inc_child(child)
                h.observe(float(i))

        ts = [threading.Thread(target=work, args=(i,)) for i in range(threads)]
        for t in ts:
            t.start()
        for t in ts:
            t.join()
        assert c.get("0") + c.get("1") == n * threads
        assert h.count == n * threads
        assert check_exposition(reg.expose()) == []


class TestFormatting:
    def test_integral_floats_render_as_ints(self):
        from repro.obs.metrics import _fmt

        assert _fmt(3.0) == "3"
        assert _fmt(3.5) == "3.5"
        assert _fmt(math.inf) == "+Inf"
        assert _fmt(-math.inf) == "-Inf"
        assert _fmt(float("nan")) == "NaN"
