"""Tests for the top-level convenience API (repro.api)."""

import pytest

import repro
from repro import (count_subgraphs, enumerate_subgraphs, get_query,
                   make_cluster)
from repro.baselines import count_matches


class TestEnumerateSubgraphs:
    def test_by_name(self, er_graph):
        result = enumerate_subgraphs(er_graph, "triangle")
        assert result.count == count_matches(er_graph, get_query("triangle"))

    def test_by_pattern_object(self, er_graph):
        q = get_query("q1")
        assert enumerate_subgraphs(er_graph, q).count == \
            count_matches(er_graph, q)

    def test_collect_flag(self, er_graph):
        result = enumerate_subgraphs(er_graph, "triangle", collect=True)
        assert result.matches is not None
        assert len(result.matches) == result.count

    def test_no_collect_no_matches(self, er_graph):
        assert enumerate_subgraphs(er_graph, "triangle").matches is None

    def test_custom_config(self, er_graph):
        from repro import EngineConfig

        cfg = EngineConfig(batch_size=32)
        result = enumerate_subgraphs(er_graph, "q1", config=cfg)
        assert result.count == count_matches(er_graph, get_query("q1"))

    def test_custom_config_plus_collect(self, er_graph):
        from repro import EngineConfig

        cfg = EngineConfig()
        result = enumerate_subgraphs(er_graph, "triangle", config=cfg,
                                     collect=True)
        assert result.matches is not None

    def test_collect_does_not_mutate_caller_config(self, er_graph):
        from repro import EngineConfig

        cfg = EngineConfig()
        enumerate_subgraphs(er_graph, "triangle", config=cfg, collect=True)
        assert cfg.collect_results is False
        # and the caller's choice is respected on a later run
        assert enumerate_subgraphs(er_graph, "triangle",
                                   config=cfg).matches is None

    def test_machine_count_invariance(self, er_graph):
        expect = count_matches(er_graph, get_query("q2"))
        for k in (1, 2, 8):
            assert enumerate_subgraphs(er_graph, "q2",
                                       num_machines=k).count == expect

    def test_unknown_query_name(self, er_graph):
        with pytest.raises(KeyError):
            enumerate_subgraphs(er_graph, "q42")


class TestCountSubgraphs:
    def test_count(self, er_graph):
        assert count_subgraphs(er_graph, "triangle") == \
            count_matches(er_graph, get_query("triangle"))

    def test_kwargs_passthrough(self, er_graph):
        assert count_subgraphs(er_graph, "triangle", seed=5) == \
            count_subgraphs(er_graph, "triangle", seed=9)


class TestMakeCluster:
    def test_shape(self, er_graph):
        cl = make_cluster(er_graph, num_machines=3, workers_per_machine=2)
        assert cl.num_machines == 3
        assert cl.workers_per_machine == 2

    def test_version_exposed(self):
        assert repro.__version__
