"""Tests for the columnar Batch and its bit-exact cost arithmetic.

The vectorised operators rely on three primitives that must agree
*exactly* with their scalar counterparts: ``chain_add`` with repeated
float addition, ``exact_chain_total`` with any interleaving of addition
chains, and ``hash_destinations`` with ``hash(tuple(...)) % k``.
"""

import math
import random

import numpy as np
import pytest

from repro.core.batch import (Batch, chain_add, exact_chain_total,
                              hash_destinations)


class TestBatchProtocol:
    def test_wraps_rows_and_reports_shape(self):
        b = Batch(np.asarray([[1, 2], [3, 4]], dtype=np.int64))
        assert len(b) == 2
        assert b.arity == 2

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            Batch(np.asarray([1, 2, 3], dtype=np.int64))

    def test_iterates_as_tuples(self):
        b = Batch(np.asarray([[1, 2], [3, 4]], dtype=np.int64))
        assert list(b) == [(1, 2), (3, 4)]
        assert b[0] == (1, 2)

    def test_equality_with_lists_and_batches(self):
        b = Batch(np.asarray([[1, 2]], dtype=np.int64))
        assert b == [(1, 2)]
        assert b == Batch(np.asarray([[1, 2]], dtype=np.int64))
        assert b != [(2, 1)]

    def test_coerce_accepts_sequences_and_arrays(self):
        assert Batch.coerce([(1, 2), (3, 4)]).tolist() == [(1, 2), (3, 4)]
        assert Batch.coerce(np.zeros((2, 3), dtype=np.int64)).arity == 3
        assert Batch.coerce([], arity=4).arity == 4
        b = Batch.empty(2)
        assert Batch.coerce(b) is b

    def test_slice_and_split(self):
        b = Batch(np.arange(12, dtype=np.int64).reshape(6, 2))
        assert isinstance(b[1:3], Batch)
        parts = list(b.split(4))
        assert [len(p) for p in parts] == [4, 2]
        assert parts[0][0] == (0, 1)


class TestChainAdd:
    def literal(self, base, step, n):
        for _ in range(n):
            base += step
        return base

    def test_matches_literal_loop_on_cost_grid(self):
        for step in (0.25, 0.5, 1.0, 3.0, 4.0):
            for n in (0, 1, 7, 100, 1023):
                base = 17.0
                assert chain_add(base, step, n) == self.literal(base, step, n)

    def test_matches_literal_loop_on_log2_bases(self):
        """the one non-dyadic source in the cost model is math.log2"""
        rng = random.Random(7)
        for _ in range(300):
            base = rng.randint(1, 500) * math.log2(rng.randint(2, 9000)) / 4
            step = rng.choice((0.25, 0.5, 1.0, 1.25, 3.0))
            n = rng.randint(0, 700)
            assert chain_add(base, step, n) == self.literal(base, step, n)

    def test_zero_step_and_zero_count(self):
        assert chain_add(5.5, 0.0, 100) == 5.5
        assert chain_add(5.5, 0.25, 0) == 5.5

    def test_absorbing_fixed_point(self):
        big = 2.0 ** 60
        assert chain_add(big, 0.25, 10 ** 9) == big


class TestExactChainTotal:
    def test_equals_any_interleaving(self):
        parts = [(0.25, 13), (2.0, 5), (1.0, 7)]
        closed = exact_chain_total(parts)
        assert closed is not None
        rng = random.Random(3)
        steps = [s for s, c in parts for _ in range(c)]
        for _ in range(20):
            rng.shuffle(steps)
            acc = 0.0
            for s in steps:
                acc += s
            assert acc == closed

    def test_declines_when_not_provably_exact(self):
        assert exact_chain_total([(0.1, 3)]) is None

    def test_empty_is_zero(self):
        assert exact_chain_total([]) == 0.0
        assert exact_chain_total([(0.25, 0)]) == 0.0


class TestHashDestinations:
    @pytest.mark.parametrize("width", [1, 2, 3])
    @pytest.mark.parametrize("k", [1, 2, 7, 10])
    def test_matches_interpreter_hash(self, width, k):
        rng = np.random.default_rng(width * 100 + k)
        keys = rng.integers(0, 1 << 45, size=(200, width), dtype=np.int64)
        got = hash_destinations(keys, k)
        expect = [hash(tuple(int(x) for x in row)) % k for row in keys]
        assert got.tolist() == expect

    def test_empty_input(self):
        assert len(hash_destinations(np.empty((0, 2), dtype=np.int64), 3)) == 0
