"""Tests for the LRBU cache and ablation variants (paper Algorithm 3)."""

import numpy as np
import pytest

from repro.cluster import CostModel
from repro.core import CACHE_VARIANTS, LRBUCache, LRUCache, make_cache


def arr(*vals):
    return np.asarray(vals, dtype=np.int64)


@pytest.fixture()
def cost():
    return CostModel()


class TestLRBUBasics:
    def test_insert_get_contains(self, cost):
        c = LRBUCache(100, cost)
        c.insert(5, arr(1, 2, 3))
        assert c.contains(5)
        assert list(c.get(5)) == [1, 2, 3]
        assert not c.contains(6)

    def test_get_returns_reference_not_copy(self, cost):
        """zero-copy: the stored array object itself is returned"""
        c = LRBUCache(100, cost)
        data = arr(1, 2)
        c.insert(1, data)
        assert c.get(1) is data

    def test_size_tracking(self, cost):
        c = LRBUCache(100, cost)
        c.insert(1, arr(1, 2, 3))   # 4 ids
        c.insert(2, arr(9))         # 2 ids
        assert c.size_ids == 6
        assert len(c) == 2

    def test_duplicate_insert_ignored(self, cost):
        c = LRBUCache(100, cost)
        c.insert(1, arr(1, 2))
        c.insert(1, arr(9, 9, 9))
        assert list(c.get(1)) == [1, 2]
        assert c.size_ids == 3

    def test_plain_lrbu_has_no_access_penalty(self, cost):
        c = LRBUCache(100, cost)
        c.insert(1, arr(1, 2, 3))
        assert c.access_penalty(1) == 0.0


class TestLRBUEviction:
    def test_evicts_least_recent_batch_first(self, cost):
        c = LRBUCache(6, cost)
        # batch 1: vertices 1, 2
        c.insert(1, arr(7))
        c.seal(1)
        c.insert(2, arr(8))
        c.seal(2)
        c.release()
        # batch 2: vertex 3
        c.insert(3, arr(9))
        c.seal(3)
        c.release()
        # cache now 6/6 full; inserting evicts batch-1 entries first
        c.insert(4, arr(1))
        assert not c.contains(1)    # oldest batch evicted
        assert c.contains(3)

    def test_sealed_entries_never_evicted(self, cost):
        c = LRBUCache(4, cost)
        c.insert(1, arr(1))
        c.seal(1)
        c.insert(2, arr(2))
        c.seal(2)
        # full + everything sealed: next insert overflows but evicts nothing
        c.insert(3, arr(3))
        assert c.contains(1) and c.contains(2) and c.contains(3)
        assert c.size_ids > c.capacity_ids
        assert c.num_sealed == 3  # insert pins the new entry too

    def test_overflow_bounded_by_batch(self, cost):
        """the invariant of §4.4: overflow ≤ remote vertices of one batch"""
        c = LRBUCache(10, cost)
        batch = [(i, arr(i)) for i in range(10, 16)]  # 6 entries of 2 ids
        for vid, nbrs in batch:
            c.insert(vid, nbrs)
            c.seal(vid)
        # capacity 10, sealed size 12 → overflow 2 ≤ one batch (12 ids)
        assert c.stats.max_overflow_ids <= sum(len(n) + 1 for _, n in batch)
        c.release()
        # after release the next insert can evict back under capacity
        c.insert(99, arr(1, 2, 3))
        assert c.size_ids <= 10

    def test_release_orders_after_existing(self, cost):
        c = LRBUCache(4, cost)
        c.insert(1, arr(1))
        c.seal(1)
        c.release()            # free order: [1]
        c.insert(2, arr(2))
        c.seal(2)
        c.release()            # free order: [1, 2]
        c.insert(3, arr(3))    # evicts 1 (smallest order), not 2
        assert not c.contains(1)
        assert c.contains(2)

    def test_eviction_counted(self, cost):
        c = LRBUCache(2, cost)
        c.insert(1, arr(1))
        c.seal(1)
        c.release()
        c.insert(2, arr(2))
        assert c.stats.evictions == 1

    def test_unbounded_cache_never_evicts(self, cost):
        c = LRBUCache(None, cost)
        for i in range(100):
            c.insert(i, arr(i))
        assert len(c) == 100
        assert c.stats.evictions == 0

    def test_seal_of_missing_vertex_harmless(self, cost):
        c = LRBUCache(10, cost)
        c.seal(42)
        c.release()  # vertex 42 was never inserted; must not appear
        assert not c.contains(42)


class TestAblationVariants:
    def test_variant_names(self):
        assert set(CACHE_VARIANTS) == {"lrbu", "lrbu-copy", "lrbu-lock",
                                       "lru-inf", "cncr-lru"}

    def test_make_cache_unknown(self, cost):
        with pytest.raises(ValueError):
            make_cache("bogus", 10, cost)

    def test_penalty_ordering(self, cost):
        """LRBU < LRBU-Copy < LRBU-Lock < LRU penalties (Table 5)"""
        nbrs = arr(*range(50))
        penalties = {}
        for name in CACHE_VARIANTS:
            c = make_cache(name, 1000, cost, workers=4)
            c.insert(1, nbrs)
            penalties[name] = c.access_penalty(1)
        assert penalties["lrbu"] == 0.0
        assert penalties["lrbu"] < penalties["lrbu-copy"]
        assert penalties["lrbu-copy"] < penalties["lrbu-lock"]
        assert penalties["lrbu-lock"] < penalties["lru-inf"]
        assert penalties["lru-inf"] < penalties["cncr-lru"]

    def test_lru_inf_is_unbounded(self, cost):
        c = make_cache("lru-inf", 10, cost)
        for i in range(50):
            c.insert(i, arr(i))
        assert len(c) == 50

    def test_cncr_lru_disables_two_stage(self, cost):
        assert make_cache("cncr-lru", 10, cost).supports_two_stage is False
        assert make_cache("lrbu", 10, cost).supports_two_stage is True
        assert make_cache("lru-inf", 10, cost).supports_two_stage is True


class TestLRUCache:
    def test_lru_eviction_order(self, cost):
        c = LRUCache(4, cost)
        c.insert(1, arr(1))
        c.insert(2, arr(2))
        c.get(1)               # touch 1 → 2 becomes LRU
        c.insert(3, arr(3))    # evicts 2
        assert c.contains(1)
        assert not c.contains(2)

    def test_seal_release_are_noops(self, cost):
        c = LRUCache(4, cost)
        c.insert(1, arr(1))
        c.seal(1)
        c.release()
        assert c.contains(1)

    def test_reinsert_moves_to_back(self, cost):
        c = LRUCache(4, cost)
        c.insert(1, arr(1))
        c.insert(2, arr(2))
        c.insert(1, arr(1))    # refresh
        c.insert(3, arr(3))    # evicts 2
        assert c.contains(1) and not c.contains(2)

    def test_stats_hit_rate(self, cost):
        c = LRUCache(4, cost)
        c.stats.hits = 3
        c.stats.misses = 1
        assert c.stats.hit_rate == pytest.approx(0.75)

    def test_empty_stats(self, cost):
        assert LRUCache(4, cost).stats.hit_rate == 0.0


class TestLRURecencyRegressions:
    """Regressions for the LRU bookkeeping fixes: a positive ``contains``
    probe must refresh recency, and a re-insert must retire the old
    entry's occupancy before storing the new one."""

    def test_contains_refreshes_recency(self, cost):
        c = LRUCache(4, cost)
        c.insert(1, arr(1))
        c.insert(2, arr(2))
        assert c.contains(1)    # probe must move 1 to the back
        c.insert(3, arr(3))     # evicts the true LRU: 2, not 1
        assert c.contains(1)
        assert not c.contains(2)

    def test_reinsert_reaccounts_occupancy(self, cost):
        c = LRUCache(100, cost)
        c.insert(1, arr(1, 2, 3))   # 4 ids
        c.insert(1, arr(9))         # shrink to 2 ids
        assert c.size_ids == 2
        assert list(c.get(1)) == [9]

    def test_reinsert_same_size_does_not_leak_ids(self, cost):
        c = LRUCache(6, cost)
        c.insert(1, arr(1, 2))      # 3 ids
        c.insert(1, arr(1, 2))      # stale accounting would make this 6
        c.insert(2, arr(3, 4))      # fits exactly when accounting is right
        assert c.size_ids == 6
        assert c.contains(1) and c.contains(2)
        assert c.stats.evictions == 0

    def test_replacement_is_not_an_eviction(self, cost):
        c = LRUCache(100, cost)
        c.insert(1, arr(1))
        c.insert(1, arr(2, 3))
        assert c.stats.evictions == 0


class TestLRBUOverflowRegression:
    def test_repin_sheds_stale_overflow(self, cost):
        """Re-pinning a resident entry must still drain overflow left from
        a previous batch: after release, evictable entries may not keep
        the cache above capacity past the one-batch overflow bound."""
        c = LRBUCache(2, cost)
        for v in (0, 1, 2):
            c.insert(v, arr(v))     # 2 ids each, all pinned: size 6
        assert c.size_ids == 6
        c.release()                 # all three become evictable
        c.insert(0, arr(0))         # re-pin 0; stale overflow must drain
        assert c.contains(0)
        assert c.size_ids == 2
        assert not c.contains(1) and not c.contains(2)
        assert c.stats.evictions == 2
