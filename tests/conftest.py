"""Shared fixtures: small graphs, clusters, engines — plus the ``--slow``
switch that raises hypothesis example counts and enables the soak-style
tests marked ``@pytest.mark.slow``."""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, settings

from repro.cluster import Cluster, CostModel
from repro.graph import generators as gen

settings.register_profile(
    "default", max_examples=25, deadline=None,
    suppress_health_check=[HealthCheck.too_slow])
settings.register_profile(
    "slow", max_examples=200, deadline=None,
    suppress_health_check=[HealthCheck.too_slow])


def pytest_addoption(parser):
    parser.addoption(
        "--slow", action="store_true", default=False,
        help="run slow-marked tests and raise hypothesis example counts")


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "slow: long-running soak tests (enable with --slow)")
    settings.load_profile("slow" if config.getoption("--slow") else "default")


def pytest_collection_modifyitems(config, items):
    if config.getoption("--slow"):
        return
    skip = pytest.mark.skip(reason="slow test: pass --slow to run")
    for item in items:
        if "slow" in item.keywords:
            item.add_marker(skip)


@pytest.fixture(scope="session")
def er_graph():
    """A small Erdős–Rényi graph with plenty of structure."""
    return gen.erdos_renyi(40, 0.2, seed=3)


@pytest.fixture(scope="session")
def ba_graph():
    """A small scale-free graph (mild skew)."""
    return gen.barabasi_albert(80, 3, seed=4)


@pytest.fixture(scope="session")
def plc_graph():
    """A clustered power-law graph (triangles and cliques exist)."""
    return gen.power_law_cluster(70, 4, triad_p=0.7, seed=5)


@pytest.fixture()
def cluster(er_graph):
    """A fresh 4-machine cluster over the ER graph."""
    return Cluster(er_graph, num_machines=4, workers_per_machine=4, seed=1)


@pytest.fixture()
def ba_cluster(ba_graph):
    """A fresh 4-machine cluster over the BA graph."""
    return Cluster(ba_graph, num_machines=4, workers_per_machine=4, seed=1)


@pytest.fixture()
def cost():
    """A default cost model."""
    return CostModel()
