"""Shared fixtures: small graphs, clusters, engines."""

from __future__ import annotations

import pytest

from repro.cluster import Cluster, CostModel
from repro.graph import generators as gen


@pytest.fixture(scope="session")
def er_graph():
    """A small Erdős–Rényi graph with plenty of structure."""
    return gen.erdos_renyi(40, 0.2, seed=3)


@pytest.fixture(scope="session")
def ba_graph():
    """A small scale-free graph (mild skew)."""
    return gen.barabasi_albert(80, 3, seed=4)


@pytest.fixture(scope="session")
def plc_graph():
    """A clustered power-law graph (triangles and cliques exist)."""
    return gen.power_law_cluster(70, 4, triad_p=0.7, seed=5)


@pytest.fixture()
def cluster(er_graph):
    """A fresh 4-machine cluster over the ER graph."""
    return Cluster(er_graph, num_machines=4, workers_per_machine=4, seed=1)


@pytest.fixture()
def ba_cluster(ba_graph):
    """A fresh 4-machine cluster over the BA graph."""
    return Cluster(ba_graph, num_machines=4, workers_per_machine=4, seed=1)


@pytest.fixture()
def cost():
    """A default cost model."""
    return CostModel()
