"""Conformance-harness tests: the smoke sweep the CI runs, the
mutation-catching self-test, shrinking, and artifact replay.

The smoke test here is the acceptance gate from the design: a fixed-seed
sweep of ≥100 workload×config cases over the smoke matrix must pass well
under 60 seconds.  The mutation test proves the harness has teeth — an
engine with symmetry breaking deliberately disabled must be caught,
shrunk to a minimal workload, and round-trip through a replayable JSON
artifact.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys

import pytest

from repro.testing import (ConformanceHarness, EngineSpec, compute_reference,
                           default_matrix, load_artifact, random_workload,
                           replay_artifact, run_case, save_artifact,
                           shrink_workload, smoke_matrix)
from repro.testing.oracles import CaseOutcome, check_case


class TestSmokeSweep:
    def test_smoke_matrix_100_cases(self):
        harness = ConformanceHarness(specs=smoke_matrix(), seed=1,
                                     max_vertices=12, shrink=False)
        report = harness.run(num_cases=100, stop_on_failure=True)
        assert report.ok, report.summary()
        assert report.cases_run >= 100
        assert report.elapsed_s < 60.0, (
            f"smoke sweep too slow: {report.elapsed_s:.1f}s")

    def test_full_matrix_one_workload(self):
        """Every spec in the full matrix runs and agrees on one workload."""
        wl = random_workload(1)
        ref = compute_reference(wl)
        for spec in default_matrix():
            if not spec.supports(wl):
                continue
            outcome = run_case(wl, spec, ref=ref)
            assert outcome.ok, (
                f"{spec.name}: " + "; ".join(
                    f.message for f in outcome.failures))


class TestMutationCatching:
    def test_disabled_symmetry_is_caught(self, tmp_path):
        mutant = EngineSpec("huge-default").mutated()
        assert mutant.disable_symmetry

        caught = None
        for i in range(50):
            wl = random_workload(i, max_vertices=10)
            ref = compute_reference(wl)
            outcome = run_case(wl, mutant, ref=ref)
            if not outcome.ok:
                caught = (wl, outcome)
                break
        assert caught is not None, (
            "mutation never caught in 50 workloads — harness has no teeth")
        wl, outcome = caught
        oracles_hit = {f.oracle for f in outcome.failures}
        assert oracles_hit & {"count", "embeddings", "symmetry"}

        # shrink to a minimal repro: still failing, no larger than the
        # original, and every surviving edge is load-bearing
        small = shrink_workload(wl, mutant)
        assert not run_case(small, mutant,
                            ref=compute_reference(small)).ok
        assert len(small.edges) <= len(wl.edges)
        assert small.num_vertices <= wl.num_vertices

        # artifact round-trip: save, load, replay — replay must still fail
        path = str(tmp_path / "mutant.json")
        save_artifact(path, small, mutant, outcome.failures)
        wl2, spec2, recorded = load_artifact(path)
        assert wl2 == small
        assert spec2 == mutant
        assert recorded
        replayed = replay_artifact(path)
        assert not replayed.ok

    def test_replay_cli_exit_codes(self, tmp_path):
        """``python -m repro.conformance replay`` exits 1 while the bug
        reproduces and 0 for an artifact whose case now passes."""
        mutant = EngineSpec("huge-default").mutated()
        wl = None
        for i in range(50):
            cand = random_workload(i, max_vertices=10)
            outcome = run_case(cand, mutant, ref=compute_reference(cand))
            if not outcome.ok:
                wl = shrink_workload(cand, mutant)
                failures = outcome.failures
                break
        assert wl is not None

        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
        env["PYTHONPATH"] = os.path.abspath(src)

        bad = str(tmp_path / "bad.json")
        save_artifact(bad, wl, mutant, failures)
        proc = subprocess.run(
            [sys.executable, "-m", "repro.conformance", "replay", bad],
            env=env, capture_output=True, text=True, timeout=120)
        assert proc.returncode == 1, proc.stdout + proc.stderr

        # the same workload under the unmutated spec passes → exit 0
        good = str(tmp_path / "good.json")
        save_artifact(good, wl, EngineSpec("huge-default"), failures)
        proc = subprocess.run(
            [sys.executable, "-m", "repro.conformance", "replay", good],
            env=env, capture_output=True, text=True, timeout=120)
        assert proc.returncode == 0, proc.stdout + proc.stderr


class TestSerialisation:
    def test_workload_json_round_trip(self):
        wl = random_workload(7)
        blob = json.dumps(wl.to_dict())
        assert type(wl).from_dict(json.loads(blob)) == wl

    def test_labelled_workload_round_trip(self):
        wl = None
        for i in range(40):
            cand = random_workload(i, labelled_fraction=1.0)
            if cand.is_labelled:
                wl = cand
                break
        assert wl is not None
        blob = json.dumps(wl.to_dict())
        assert type(wl).from_dict(json.loads(blob)) == wl

    def test_engine_spec_round_trip(self):
        for spec in default_matrix():
            blob = json.dumps(spec.to_dict())
            assert EngineSpec.from_dict(json.loads(blob)) == spec

    def test_infinite_queue_capacity_serialises(self):
        spec = EngineSpec("bfs", output_queue_capacity=float("inf"))
        again = EngineSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert again.output_queue_capacity == float("inf")


class TestOracles:
    def _ref_and_workload(self):
        for i in range(30):
            wl = random_workload(i)
            ref = compute_reference(wl)
            if ref.count > 0:
                return wl, ref
        raise AssertionError("no workload with matches in 30 seeds")

    def test_count_oracle_flags_wrong_count(self):
        wl, ref = self._ref_and_workload()
        outcome = CaseOutcome(spec_name="x", count=ref.count + 1)
        fails = check_case(wl, EngineSpec("seed", engine="seed"),
                           outcome, ref)
        assert any(f.oracle == "count" for f in fails)

    def test_error_short_circuits(self):
        wl, ref = self._ref_and_workload()
        outcome = CaseOutcome(spec_name="x", error="boom")
        fails = check_case(wl, EngineSpec("seed", engine="seed"),
                           outcome, ref)
        assert [f.oracle for f in fails] == ["error"]

    def test_embedding_multiset_oracle(self):
        wl, ref = self._ref_and_workload()
        bogus = [tuple(range(wl.pattern_num_vertices))] * ref.count
        outcome = CaseOutcome(spec_name="x", count=ref.count, matches=bogus)
        fails = check_case(wl, EngineSpec("seed", engine="seed"),
                           outcome, ref)
        assert any(f.oracle == "embeddings" for f in fails)

    def test_reference_symmetry_identity(self):
        wl, ref = self._ref_and_workload()
        assert ref.count * ref.automorphisms == ref.ordered_count


class TestBenchmarkSeeding:
    def test_make_cluster_is_deterministic(self):
        bench = os.path.abspath(os.path.join(
            os.path.dirname(__file__), os.pardir, "benchmarks"))
        sys.path.insert(0, bench)
        try:
            import common
            a = common.make_cluster("GO", scale=0.05)
            b = common.make_cluster("GO", scale=0.05)
        finally:
            sys.path.remove(bench)
        assert a.graph.num_vertices == b.graph.num_vertices
        assert a.graph.num_edges == b.graph.num_edges
        assert list(a.graph.edges()) == list(b.graph.edges())
        for m in range(a.num_machines):
            assert list(a.local_vertices(m)) == list(b.local_vertices(m))

    @pytest.mark.slow
    def test_soak_full_matrix(self):
        harness = ConformanceHarness(specs=default_matrix(), seed=42,
                                     max_vertices=14, shrink=False)
        report = harness.run(num_cases=400, stop_on_failure=True)
        assert report.ok, report.summary()
