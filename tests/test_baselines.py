"""Tests for the baseline engines: correctness + characteristic behaviour."""

import pytest

from repro.baselines import (BenuEngine, BigJoinEngine, DistributedRelation,
                             RadsEngine, SeedEngine, count_matches,
                             materialize_star, valid_leaf_patterns)
from repro.cluster import (Cluster, CostModel, OutOfMemoryError,
                           OvertimeError)
from repro.core import HugeEngine
from repro.graph import generators as gen
from repro.query import get_query, symmetry_break

QUERIES = ["triangle", "q1", "q2", "q3", "q6", "q7"]


class TestCorrectness:
    @pytest.mark.parametrize("name", QUERIES)
    def test_seed(self, name, cluster, er_graph):
        q = get_query(name)
        assert SeedEngine(cluster).run(q).count == count_matches(er_graph, q)

    @pytest.mark.parametrize("name", QUERIES)
    def test_bigjoin(self, name, cluster, er_graph):
        q = get_query(name)
        assert BigJoinEngine(cluster).run(q).count == \
            count_matches(er_graph, q)

    @pytest.mark.parametrize("name", QUERIES)
    def test_benu(self, name, cluster, er_graph):
        q = get_query(name)
        assert BenuEngine(cluster).run(q).count == count_matches(er_graph, q)

    @pytest.mark.parametrize("name", QUERIES)
    def test_rads(self, name, cluster, er_graph):
        q = get_query(name)
        assert RadsEngine(cluster).run(q).count == count_matches(er_graph, q)

    @pytest.mark.parametrize("name", ["q4", "q5", "q8"])
    def test_all_engines_agree_on_big_queries(self, name, ba_cluster,
                                              ba_graph):
        q = get_query(name)
        expect = count_matches(ba_graph, q)
        for engine in (SeedEngine(ba_cluster), BigJoinEngine(ba_cluster),
                       BenuEngine(ba_cluster), RadsEngine(ba_cluster),
                       HugeEngine(ba_cluster)):
            assert engine.run(q).count == expect

    def test_bigjoin_small_batches_correct(self, cluster, er_graph):
        q = get_query("q1")
        eng = BigJoinEngine(cluster, edge_batch=7)
        assert eng.run(q).count == count_matches(er_graph, q)

    def test_rads_region_groups_correct(self, cluster, er_graph):
        q = get_query("q1")
        for groups in (1, 2, 7):
            eng = RadsEngine(cluster, region_groups=groups)
            assert eng.run(q).count == count_matches(er_graph, q)

    def test_rads_invalid_groups(self, cluster):
        with pytest.raises(ValueError):
            RadsEngine(cluster, region_groups=0)


class TestCharacteristics:
    """The qualitative Table 1 profile on a skewed graph."""

    @pytest.fixture(scope="class")
    def skewed_results(self):
        g = gen.hub_web(300, num_hubs=2, hub_degree=80, seed=2)
        cl = Cluster(g, num_machines=4, workers_per_machine=4, seed=1)
        q = get_query("q1")
        out = {}
        for eng in (SeedEngine(cl), BigJoinEngine(cl), BenuEngine(cl),
                    RadsEngine(cl), HugeEngine(cl)):
            name = getattr(eng, "name", "HUGE")
            out[name] = eng.run(q)
        return out

    def test_all_counts_agree(self, skewed_results):
        counts = {r.count for r in skewed_results.values()}
        assert len(counts) == 1

    def test_huge_lowest_comm_volume(self, skewed_results):
        huge_c = skewed_results["HUGE"].report.bytes_transferred
        for name in ("SEED", "BiGJoin", "BENU"):
            assert skewed_results[name].report.bytes_transferred > huge_c

    def test_benu_smallest_memory(self, skewed_results):
        benu_m = skewed_results["BENU"].report.peak_memory_bytes
        for name in ("SEED", "BiGJoin", "RADS", "HUGE"):
            assert skewed_results[name].report.peak_memory_bytes >= benu_m

    def test_benu_slowest_and_compute_bound(self, skewed_results):
        benu = skewed_results["BENU"].report
        assert benu.total_time_s == max(
            r.report.total_time_s for r in skewed_results.values())
        assert benu.compute_time_s > benu.comm_time_s

    def test_huge_fastest(self, skewed_results):
        huge_t = skewed_results["HUGE"].report.total_time_s
        for name, r in skewed_results.items():
            if name != "HUGE":
                assert r.report.total_time_s > huge_t

    def test_pushing_systems_transfer_most(self, skewed_results):
        push = min(skewed_results[n].report.bytes_transferred
                   for n in ("SEED", "BiGJoin"))
        pull_like = skewed_results["HUGE"].report.bytes_transferred
        assert push > pull_like


class TestBuildingBlocks:
    def test_distributed_relation_memory_lifecycle(self, cluster):
        rel = DistributedRelation(cluster, (0, 1),
                                  [[(1, 2)], [], [(3, 4), (5, 6)], []])
        assert rel.total == 3
        used = sum(m.cur_mem_bytes for m in cluster.metrics.machines)
        assert used == 3 * 2 * 8
        rel.drop()
        assert sum(m.cur_mem_bytes for m in cluster.metrics.machines) == 0

    def test_drop_idempotent(self, cluster):
        rel = DistributedRelation(cluster, (0,), [[(1,)], [], [], []])
        rel.drop()
        rel.drop()
        assert cluster.metrics.machines[0].cur_mem_bytes == 0

    def test_shuffle_groups_by_key(self, cluster):
        rel = DistributedRelation(
            cluster, (0, 1), [[(7, 1), (7, 2), (9, 3)], [], [], []])
        shuffled = rel.shuffle((0,))
        # same key → same machine
        homes = {}
        for m, part in enumerate(shuffled.partitions):
            for f in part:
                homes.setdefault(f[0], set()).add(m)
        assert all(len(ms) == 1 for ms in homes.values())

    def test_materialize_star_counts(self, cluster, er_graph):
        from repro.query import QueryGraph

        applied = set()
        star = QueryGraph(3, [(0, 1), (0, 2)])
        conditions = symmetry_break(star)
        rel = materialize_star(cluster, 0, [1, 2], conditions, applied)
        assert rel.total == count_matches(er_graph, star)

    def test_valid_leaf_patterns_unconstrained(self):
        assert len(valid_leaf_patterns(3, [])) == 6

    def test_valid_leaf_patterns_total_order(self):
        pats = valid_leaf_patterns(3, [(0, 1), (1, 2)])
        assert pats == [(0, 1, 2)]

    def test_valid_leaf_patterns_partial(self):
        pats = valid_leaf_patterns(3, [(0, 1)])
        assert len(pats) == 3


class TestKVStore:
    def test_get_requires_load(self, cluster):
        from repro.baselines import ExternalKVStore

        store = ExternalKVStore(cluster)
        with pytest.raises(RuntimeError):
            store.get(0, 1)

    def test_get_charges_stall_and_bytes(self, cluster, er_graph):
        from repro.baselines import ExternalKVStore
        import numpy as np

        store = ExternalKVStore(cluster, loaded=True)
        nbrs = store.get(0, 3)
        assert np.array_equal(nbrs, er_graph.neighbours(3))
        m = cluster.metrics.machines[0]
        assert m.direct_compute_s > 0
        assert m.bytes_sent > 0
        assert store.requests == 1

    def test_load_charges_time(self, cluster):
        from repro.baselines import ExternalKVStore

        store = ExternalKVStore(cluster)
        store.load()
        assert cluster.metrics.machines[0].direct_compute_s > 0

    def test_single_machine_cluster_still_charges_wire(self, er_graph):
        # regression: load's destination used to be ``1 % max(1, k)`` —
        # a machine-0 self-send on single-machine clusters, i.e. the whole
        # graph upload (and every get round trip) was accounted as free
        from repro.baselines import ExternalKVStore

        solo = Cluster(er_graph, num_machines=1, workers_per_machine=2)
        store = ExternalKVStore(solo)
        store.load()
        m = solo.metrics.machines[0]
        assert m.bytes_sent == solo.graph_bytes()
        assert m.messages_sent == er_graph.num_vertices

        sent_before = m.bytes_sent
        store.get(0, 3)  # must not index a non-existent second machine
        assert m.bytes_sent > sent_before
        assert m.messages_sent == er_graph.num_vertices + 2
        assert m.rpc_requests == 1

    def test_wire_charges_match_across_cluster_sizes(self, er_graph):
        # the external store's traffic is off-cluster: the sender-side
        # totals must not depend on how many in-cluster machines exist
        from repro.baselines import ExternalKVStore

        totals = []
        for k in (1, 2, 4):
            c = Cluster(er_graph, num_machines=k, workers_per_machine=2)
            store = ExternalKVStore(c)
            store.load()
            store.get(0, 3)
            m = c.metrics.machines[0]
            totals.append((m.bytes_sent, m.messages_sent))
        assert totals[0] == totals[1] == totals[2]


class TestMemoryOracle:
    """Every exit of ``hash_join``/``materialize_star`` balances the
    simulated memory ledger: inputs are consumed, aborts release whatever
    partial output had been charged, and no path drives an allocator
    negative (``mem_underflows`` stays 0)."""

    @staticmethod
    def _assert_ledger_clean(cl):
        for m in cl.metrics.machines:
            assert m.cur_mem_bytes == 0
            assert m.mem_underflows == 0

    @staticmethod
    def _skewed_pair(cl, rows=200):
        """Two relations sharing one hot key, so the join output lands on
        a single machine and dwarfs the inputs."""
        left = DistributedRelation(
            cl, (0, 1), [[(0, i + 1) for i in range(rows)], [], [], []])
        right = DistributedRelation(
            cl, (0, 2),
            [[], [(0, rows + i + 1) for i in range(rows)], [], []])
        return left, right

    def _fresh_cluster(self, er_graph, **cost_kwargs):
        return Cluster(er_graph, num_machines=4, workers_per_machine=4,
                       seed=1, cost=CostModel(**cost_kwargs))

    def test_hash_join_consumes_inputs(self, er_graph):
        cl = self._fresh_cluster(er_graph)
        left, right = self._skewed_pair(cl, rows=20)
        out = left.hash_join(right, [], set())
        # only the output remains charged: both inputs (and the shuffled
        # copies) were dropped on the way
        used = sum(m.cur_mem_bytes for m in cl.metrics.machines)
        assert used == out.total * out.tuple_bytes()
        out.drop()
        self._assert_ledger_clean(cl)

    def test_hash_join_count_only_leaves_no_memory(self, er_graph):
        cl = self._fresh_cluster(er_graph)
        left, right = self._skewed_pair(cl, rows=20)
        count = left.hash_join(right, [], set(), count_only=True)
        assert isinstance(count, int) and count == 20 * 20
        self._assert_ledger_clean(cl)

    def test_hash_join_oom_abort_releases_everything(self, er_graph):
        # inputs (3.2 kB/side) fit; the first 4096-tuple output chunk
        # (~98 kB on the hot machine) trips the budget mid-join
        cl = self._fresh_cluster(er_graph, memory_budget_bytes=50_000)
        left, right = self._skewed_pair(cl)
        with pytest.raises(OutOfMemoryError):
            left.hash_join(right, [], set())
        self._assert_ledger_clean(cl)

    def test_hash_join_overtime_abort_releases_everything(self, er_graph):
        # calibrate: a full run's simulated time, then budget half of it so
        # some check_time() inside the join aborts the run
        cl = self._fresh_cluster(er_graph)
        left, right = self._skewed_pair(cl)
        left.hash_join(right, [], set()).drop()
        full = cl.metrics.report().total_time_s
        cl = self._fresh_cluster(er_graph, time_budget_s=full / 2)
        left, right = self._skewed_pair(cl)
        with pytest.raises(OvertimeError):
            left.hash_join(right, [], set())
        self._assert_ledger_clean(cl)

    def _run_star(self, er_graph, **cost_kwargs):
        from repro.query import QueryGraph

        cl = self._fresh_cluster(er_graph, **cost_kwargs)
        star = QueryGraph(3, [(0, 1), (0, 2)])
        rel = materialize_star(cl, 0, [1, 2], symmetry_break(star), set())
        return cl, rel

    def test_materialize_star_drop_balances(self, er_graph):
        cl, rel = self._run_star(er_graph)
        used = sum(m.cur_mem_bytes for m in cl.metrics.machines)
        assert used == rel.total * rel.tuple_bytes()
        rel.drop()
        self._assert_ledger_clean(cl)

    def test_materialize_star_oom_abort_releases_charged(self, er_graph):
        cl, rel = self._run_star(er_graph)
        peak = cl.metrics.report().peak_memory_bytes
        rel.drop()
        # half the real peak: either the pre-flight prediction or an
        # incremental generation chunk must trip, releasing all charges
        cl = self._fresh_cluster(er_graph, memory_budget_bytes=peak / 2)
        from repro.query import QueryGraph

        star = QueryGraph(3, [(0, 1), (0, 2)])
        with pytest.raises(OutOfMemoryError):
            materialize_star(cl, 0, [1, 2], symmetry_break(star), set())
        self._assert_ledger_clean(cl)

    def test_materialize_star_overtime_abort_releases_charged(self,
                                                              er_graph):
        cl, rel = self._run_star(er_graph)
        full = cl.metrics.report().total_time_s
        rel.drop()
        from repro.query import QueryGraph

        star = QueryGraph(3, [(0, 1), (0, 2)])
        cl = self._fresh_cluster(er_graph, time_budget_s=full / 2)
        with pytest.raises(OvertimeError):
            materialize_star(cl, 0, [1, 2], symmetry_break(star), set())
        self._assert_ledger_clean(cl)
