"""Tests for the baseline engines: correctness + characteristic behaviour."""

import pytest

from repro.baselines import (BenuEngine, BigJoinEngine, DistributedRelation,
                             RadsEngine, SeedEngine, count_matches,
                             materialize_star, valid_leaf_patterns)
from repro.cluster import Cluster
from repro.core import HugeEngine
from repro.graph import generators as gen
from repro.query import get_query, symmetry_break

QUERIES = ["triangle", "q1", "q2", "q3", "q6", "q7"]


class TestCorrectness:
    @pytest.mark.parametrize("name", QUERIES)
    def test_seed(self, name, cluster, er_graph):
        q = get_query(name)
        assert SeedEngine(cluster).run(q).count == count_matches(er_graph, q)

    @pytest.mark.parametrize("name", QUERIES)
    def test_bigjoin(self, name, cluster, er_graph):
        q = get_query(name)
        assert BigJoinEngine(cluster).run(q).count == \
            count_matches(er_graph, q)

    @pytest.mark.parametrize("name", QUERIES)
    def test_benu(self, name, cluster, er_graph):
        q = get_query(name)
        assert BenuEngine(cluster).run(q).count == count_matches(er_graph, q)

    @pytest.mark.parametrize("name", QUERIES)
    def test_rads(self, name, cluster, er_graph):
        q = get_query(name)
        assert RadsEngine(cluster).run(q).count == count_matches(er_graph, q)

    @pytest.mark.parametrize("name", ["q4", "q5", "q8"])
    def test_all_engines_agree_on_big_queries(self, name, ba_cluster,
                                              ba_graph):
        q = get_query(name)
        expect = count_matches(ba_graph, q)
        for engine in (SeedEngine(ba_cluster), BigJoinEngine(ba_cluster),
                       BenuEngine(ba_cluster), RadsEngine(ba_cluster),
                       HugeEngine(ba_cluster)):
            assert engine.run(q).count == expect

    def test_bigjoin_small_batches_correct(self, cluster, er_graph):
        q = get_query("q1")
        eng = BigJoinEngine(cluster, edge_batch=7)
        assert eng.run(q).count == count_matches(er_graph, q)

    def test_rads_region_groups_correct(self, cluster, er_graph):
        q = get_query("q1")
        for groups in (1, 2, 7):
            eng = RadsEngine(cluster, region_groups=groups)
            assert eng.run(q).count == count_matches(er_graph, q)

    def test_rads_invalid_groups(self, cluster):
        with pytest.raises(ValueError):
            RadsEngine(cluster, region_groups=0)


class TestCharacteristics:
    """The qualitative Table 1 profile on a skewed graph."""

    @pytest.fixture(scope="class")
    def skewed_results(self):
        g = gen.hub_web(300, num_hubs=2, hub_degree=80, seed=2)
        cl = Cluster(g, num_machines=4, workers_per_machine=4, seed=1)
        q = get_query("q1")
        out = {}
        for eng in (SeedEngine(cl), BigJoinEngine(cl), BenuEngine(cl),
                    RadsEngine(cl), HugeEngine(cl)):
            name = getattr(eng, "name", "HUGE")
            out[name] = eng.run(q)
        return out

    def test_all_counts_agree(self, skewed_results):
        counts = {r.count for r in skewed_results.values()}
        assert len(counts) == 1

    def test_huge_lowest_comm_volume(self, skewed_results):
        huge_c = skewed_results["HUGE"].report.bytes_transferred
        for name in ("SEED", "BiGJoin", "BENU"):
            assert skewed_results[name].report.bytes_transferred > huge_c

    def test_benu_smallest_memory(self, skewed_results):
        benu_m = skewed_results["BENU"].report.peak_memory_bytes
        for name in ("SEED", "BiGJoin", "RADS", "HUGE"):
            assert skewed_results[name].report.peak_memory_bytes >= benu_m

    def test_benu_slowest_and_compute_bound(self, skewed_results):
        benu = skewed_results["BENU"].report
        assert benu.total_time_s == max(
            r.report.total_time_s for r in skewed_results.values())
        assert benu.compute_time_s > benu.comm_time_s

    def test_huge_fastest(self, skewed_results):
        huge_t = skewed_results["HUGE"].report.total_time_s
        for name, r in skewed_results.items():
            if name != "HUGE":
                assert r.report.total_time_s > huge_t

    def test_pushing_systems_transfer_most(self, skewed_results):
        push = min(skewed_results[n].report.bytes_transferred
                   for n in ("SEED", "BiGJoin"))
        pull_like = skewed_results["HUGE"].report.bytes_transferred
        assert push > pull_like


class TestBuildingBlocks:
    def test_distributed_relation_memory_lifecycle(self, cluster):
        rel = DistributedRelation(cluster, (0, 1),
                                  [[(1, 2)], [], [(3, 4), (5, 6)], []])
        assert rel.total == 3
        used = sum(m.cur_mem_bytes for m in cluster.metrics.machines)
        assert used == 3 * 2 * 8
        rel.drop()
        assert sum(m.cur_mem_bytes for m in cluster.metrics.machines) == 0

    def test_drop_idempotent(self, cluster):
        rel = DistributedRelation(cluster, (0,), [[(1,)], [], [], []])
        rel.drop()
        rel.drop()
        assert cluster.metrics.machines[0].cur_mem_bytes == 0

    def test_shuffle_groups_by_key(self, cluster):
        rel = DistributedRelation(
            cluster, (0, 1), [[(7, 1), (7, 2), (9, 3)], [], [], []])
        shuffled = rel.shuffle((0,))
        # same key → same machine
        homes = {}
        for m, part in enumerate(shuffled.partitions):
            for f in part:
                homes.setdefault(f[0], set()).add(m)
        assert all(len(ms) == 1 for ms in homes.values())

    def test_materialize_star_counts(self, cluster, er_graph):
        from repro.query import QueryGraph

        applied = set()
        star = QueryGraph(3, [(0, 1), (0, 2)])
        conditions = symmetry_break(star)
        rel = materialize_star(cluster, 0, [1, 2], conditions, applied)
        assert rel.total == count_matches(er_graph, star)

    def test_valid_leaf_patterns_unconstrained(self):
        assert len(valid_leaf_patterns(3, [])) == 6

    def test_valid_leaf_patterns_total_order(self):
        pats = valid_leaf_patterns(3, [(0, 1), (1, 2)])
        assert pats == [(0, 1, 2)]

    def test_valid_leaf_patterns_partial(self):
        pats = valid_leaf_patterns(3, [(0, 1)])
        assert len(pats) == 3


class TestKVStore:
    def test_get_requires_load(self, cluster):
        from repro.baselines import ExternalKVStore

        store = ExternalKVStore(cluster)
        with pytest.raises(RuntimeError):
            store.get(0, 1)

    def test_get_charges_stall_and_bytes(self, cluster, er_graph):
        from repro.baselines import ExternalKVStore
        import numpy as np

        store = ExternalKVStore(cluster, loaded=True)
        nbrs = store.get(0, 3)
        assert np.array_equal(nbrs, er_graph.neighbours(3))
        m = cluster.metrics.machines[0]
        assert m.direct_compute_s > 0
        assert m.bytes_sent > 0
        assert store.requests == 1

    def test_load_charges_time(self, cluster):
        from repro.baselines import ExternalKVStore

        store = ExternalKVStore(cluster)
        store.load()
        assert cluster.metrics.machines[0].direct_compute_s > 0
