"""Unit tests for graph partitioning (repro.graph.partition)."""

import numpy as np
import pytest

from repro.graph import PartitionedGraph, hash_partition
from repro.graph import generators as gen


class TestHashPartition:
    def test_range(self):
        owner = hash_partition(100, 7, seed=0)
        assert owner.min() >= 0 and owner.max() < 7

    def test_balanced(self):
        owner = hash_partition(1000, 10, seed=0)
        counts = np.bincount(owner, minlength=10)
        assert counts.max() - counts.min() <= 1

    def test_deterministic(self):
        assert np.array_equal(hash_partition(50, 4, seed=3),
                              hash_partition(50, 4, seed=3))

    def test_invalid_partitions(self):
        with pytest.raises(ValueError):
            hash_partition(10, 0)

    def test_zero_vertices(self):
        assert len(hash_partition(0, 4)) == 0


class TestPartitionedGraph:
    @pytest.fixture()
    def pg(self, er_graph):
        return PartitionedGraph(er_graph, 4, seed=1)

    def test_every_vertex_owned_once(self, pg, er_graph):
        all_locals = np.concatenate(
            [pg.local_vertices(p) for p in range(4)])
        assert sorted(all_locals.tolist()) == list(er_graph.vertices())

    def test_owner_of_matches_local_vertices(self, pg):
        for p in range(4):
            for v in pg.local_vertices(p):
                assert pg.owner_of(int(v)) == p
                assert pg.is_local(int(v), p)

    def test_local_read_allowed(self, pg):
        p = 0
        v = int(pg.local_vertices(p)[0])
        nbrs = pg.neighbours_local(v, p)
        assert np.array_equal(nbrs, pg.graph.neighbours(v))

    def test_remote_read_rejected(self, pg):
        v = int(pg.local_vertices(0)[0])
        wrong = (pg.owner_of(v) + 1) % 4
        with pytest.raises(KeyError):
            pg.neighbours_local(v, wrong)

    def test_local_edges_cover_all_directed_edges(self, pg, er_graph):
        total = sum(1 for p in range(4) for _ in pg.local_edges(p))
        assert total == 2 * er_graph.num_edges

    def test_partition_size_bytes_positive(self, pg):
        assert pg.partition_size_bytes(0) > 0

    def test_custom_owner_array(self, er_graph):
        owner = np.zeros(er_graph.num_vertices, dtype=np.int64)
        pg = PartitionedGraph(er_graph, 2, owner=owner)
        assert len(pg.local_vertices(0)) == er_graph.num_vertices
        assert len(pg.local_vertices(1)) == 0

    def test_owner_length_mismatch(self, er_graph):
        with pytest.raises(ValueError):
            PartitionedGraph(er_graph, 2, owner=np.zeros(3, dtype=np.int64))

    def test_owner_out_of_range(self, er_graph):
        owner = np.full(er_graph.num_vertices, 5, dtype=np.int64)
        with pytest.raises(ValueError):
            PartitionedGraph(er_graph, 2, owner=owner)

    def test_single_partition(self, er_graph):
        pg = PartitionedGraph(er_graph, 1)
        assert len(pg.local_vertices(0)) == er_graph.num_vertices
