"""Explore execution plans: Algorithm 1 vs the baselines' logical plans.

Shows, for each benchmark query, the plan HUGE's optimiser picks (join
tree + Equation-3 physical settings) and how the plug-in plans of
BiGJoin/BENU/RADS perform when executed inside HUGE (Remark 3.2).

Run:  python examples/plan_explorer.py
"""

from repro import Cluster
from repro.core import HugeEngine
from repro.core.plan import benu_plan, configure_plan, rads_plan, wco_plan
from repro.graph import load_dataset
from repro.query import QUERIES, SamplingEstimator, get_query


def main() -> None:
    graph = load_dataset("GO")
    cluster = Cluster(graph, num_machines=8, workers_per_machine=4, seed=5)
    engine = HugeEngine(cluster,
                        estimator=SamplingEstimator(graph, trials=300))
    print(f"data graph (GO stand-in): {graph}\n")

    print("=== plans chosen by Algorithm 1 ===")
    for name in ("q1", "q3", "q6", "q7"):
        plan = engine.plan(get_query(name))
        print(plan.describe())
        print()

    print("=== plug-in mode: one query, four logical plans ===")
    query = get_query("q2")
    plans = {
        "HUGE (optimal)": engine.plan(query),
        "HUGE-WCO": configure_plan(wco_plan(query)),
        "HUGE-BENU": configure_plan(benu_plan(query)),
        "HUGE-RADS": configure_plan(rads_plan(query)),
    }
    print(f"query: {query.name}")
    for label, plan in plans.items():
        result = engine.run(plan=plan)
        print(f"  {label:16s} T={result.report.total_time_s * 1e3:8.2f}ms "
              f"C={result.report.bytes_transferred / 1e3:8.1f}KB "
              f"matches={result.count}")

    print("\nall benchmark queries:", ", ".join(sorted(QUERIES)))


if __name__ == "__main__":
    main()
