"""Motif analysis of a social network (the GPM application of paper §6).

Counts every 3- and 4-vertex motif on a clustered scale-free graph, then
compares HUGE against the four baseline systems on the most expensive
motif, printing the paper-style metrics (T, T_R, T_C, C, M) side by side.

Run:  python examples/social_motifs.py
"""

from repro import Cluster
from repro.apps import motif_counts
from repro.baselines import (BenuEngine, BigJoinEngine, RadsEngine,
                             SeedEngine)
from repro.core import HugeEngine
from repro.graph import load_dataset
from repro.query import get_query


def main() -> None:
    graph = load_dataset("LJ", scale=0.6)
    cluster = Cluster(graph, num_machines=8, workers_per_machine=4, seed=7)
    print(f"data graph (LJ stand-in): {graph}\n")

    print("=== motif census (3- and 4-vertex connected patterns) ===")
    for k in (3, 4):
        counts = motif_counts(cluster, k)
        for name, count in sorted(counts.items()):
            print(f"  {name:12s} {count:>12,}")

    print("\n=== engine comparison on the square query (q1) ===")
    query = get_query("q1")
    engines = [
        ("HUGE", HugeEngine(cluster)),
        ("SEED", SeedEngine(cluster)),
        ("BiGJoin", BigJoinEngine(cluster)),
        ("BENU", BenuEngine(cluster)),
        ("RADS", RadsEngine(cluster)),
    ]
    print(f"  {'engine':9s} {'T':>9s} {'T_R':>9s} {'T_C':>9s} "
          f"{'C':>10s} {'M':>10s}")
    for name, engine in engines:
        r = engine.run(query)
        rep = r.report
        print(f"  {name:9s} {rep.total_time_s:8.3f}s {rep.compute_time_s:8.3f}s "
              f"{rep.comm_time_s:8.3f}s {rep.bytes_transferred / 1e6:8.2f}MB "
              f"{rep.peak_memory_bytes / 1e6:8.2f}MB")


if __name__ == "__main__":
    main()
