"""Path queries on a road network (the path applications of paper §6).

Uses the HUGE runtime for single-source shortest paths and for
hop-constrained s–t simple-path enumeration (bi-directional growth joined
in the middle) on the EU-road stand-in, with full communication
accounting.

Run:  python examples/road_network_paths.py
"""

from repro import Cluster
from repro.apps import enumerate_st_paths, shortest_path, \
    shortest_path_lengths
from repro.graph import load_dataset


def main() -> None:
    graph = load_dataset("EU")
    cluster = Cluster(graph, num_machines=6, workers_per_machine=2, seed=3)
    print(f"road network (EU stand-in): {graph}\n")

    source, target = 0, graph.num_vertices - 1
    path = shortest_path(cluster, source, target)
    if path is None:
        print(f"{source} -> {target}: unreachable")
    else:
        print(f"shortest path {source} -> {target}: {len(path) - 1} hops")
        print(f"  route: {' -> '.join(map(str, path[:12]))}"
              + (" ..." if len(path) > 12 else ""))

    dist = shortest_path_lengths(cluster, source)
    reach = len(dist)
    print(f"\nreachable from {source}: {reach} vertices "
          f"({reach / graph.num_vertices:.0%}); "
          f"eccentricity {max(dist.values())}")
    sent = sum(m.bytes_sent for m in cluster.metrics.machines)
    print(f"communication for the full BFS: {sent / 1e3:.1f} KB, "
          f"{sum(m.rpc_requests for m in cluster.metrics.machines)} RPCs")

    # hop-constrained simple paths between two nearby junctions
    a, b = path[0], path[min(6, len(path) - 1)]
    budget = 8
    paths = enumerate_st_paths(cluster, a, b, budget)
    print(f"\nsimple paths {a} -> {b} within {budget} hops: {len(paths)}")
    for p in paths[:5]:
        print(f"  {' -> '.join(map(str, p))}")
    if len(paths) > 5:
        print(f"  ... and {len(paths) - 5} more")


if __name__ == "__main__":
    main()
