"""Labelled graphs and the Cypher front-end (paper §2 fn. 3 and §6).

Builds a small "marketplace" graph where every vertex is a User, an Item
or a Tag, and answers labelled pattern queries through the Cypher-like
front-end — including a co-purchase recommendation pattern.

Run:  python examples/labelled_cypher.py
"""

import numpy as np

from repro import Cluster
from repro.apps import execute_cypher
from repro.graph import generators

LABELS = {"User": 0, "Item": 1, "Tag": 2}


def main() -> None:
    graph = generators.power_law_cluster(400, 3, triad_p=0.4, seed=11)
    rng = np.random.default_rng(11)
    labels = rng.choice([0, 0, 1, 1, 2], size=graph.num_vertices)
    cluster = Cluster(graph, num_machines=4, labels=labels, seed=2)
    counts = {name: int((labels == lid).sum())
              for name, lid in LABELS.items()}
    print(f"marketplace graph: {graph}; vertices by label: {counts}\n")

    queries = [
        ("users connected to items",
         "MATCH (u:User)--(i:Item) RETURN count(*)"),
        ("items sharing a tag",
         "MATCH (a:Item)--(t:Tag)--(b:Item) RETURN count(*)"),
        ("co-purchase wedge (two users, one item)",
         "MATCH (u:User)--(i:Item)--(v:User) RETURN count(*)"),
        ("labelled triangle (user-item-tag)",
         "MATCH (u:User)--(i:Item)--(t:Tag), (t)--(u) RETURN count(*)"),
    ]
    for title, text in queries:
        result = execute_cypher(cluster, text, label_ids=LABELS)
        print(f"{title}:")
        print(f"  {text}")
        print(f"  -> {result.count} matches "
              f"({result.report.total_time_s * 1e3:.2f} ms simulated)\n")

    # a projection: which users co-purchased with user of the first match?
    rows = execute_cypher(
        cluster, "MATCH (u:User)--(i:Item)--(v:User) RETURN u, i, v",
        label_ids=LABELS)
    print("first five co-purchase bindings (u, i, v):")
    for row in (rows.rows or [])[:5]:
        print(f"  {row}")


if __name__ == "__main__":
    main()
