"""Quickstart: enumerate subgraphs with HUGE in a few lines.

Run:  python examples/quickstart.py
"""

from repro import enumerate_subgraphs
from repro.graph import generators


def main() -> None:
    # a small scale-free "social network"
    graph = generators.power_law_cluster(500, 4, triad_p=0.5, seed=42)
    print(f"data graph: {graph}")

    # count triangles on a simulated 4-machine cluster
    result = enumerate_subgraphs(graph, "triangle", num_machines=4)
    print(f"\ntriangles: {result.count}")
    print(f"simulated total time:   {result.report.total_time_s * 1e3:.2f} ms")
    print(f"  computation time:     {result.report.compute_time_s * 1e3:.2f} ms")
    print(f"  communication time:   {result.report.comm_time_s * 1e3:.2f} ms")
    print(f"  data transferred:     {result.report.bytes_transferred / 1e3:.1f} KB")
    print(f"  peak machine memory:  {result.report.peak_memory_bytes / 1e3:.1f} KB")

    # the execution plan chosen by Algorithm 1
    print("\n" + result.plan.describe())

    # retrieve actual matches for a square query
    squares = enumerate_subgraphs(graph, "q1", collect=True)
    print(f"\nsquares: {squares.count}; first three matches "
          f"(one data vertex per query vertex):")
    for match in squares.matches[:3]:
        print(f"  {match}")

    # any custom pattern works — e.g. a "paw" (triangle with a tail)
    from repro import QueryGraph

    paw = QueryGraph(4, [(0, 1), (1, 2), (0, 2), (2, 3)], name="paw")
    print(f"\npaws: {enumerate_subgraphs(graph, paw).count}")


if __name__ == "__main__":
    main()
